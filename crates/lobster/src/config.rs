//! Lobster configuration.
//!
//! "An execution begins with the main Lobster process that is invoked by
//! the user to initiate a workload. The user provides a configuration file
//! which describes the input data sources and the analysis code" (§3).
//!
//! The configuration is JSON on disk; every knob that the evaluation
//! sweeps (task size, data access mode, merging mode, worker shape,
//! infrastructure sizing) lives here with paper-calibrated defaults.

use crate::access::DataAccessMode;
use crate::merge::MergeMode;
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::SimDuration;
use std::io;
use std::path::Path;

/// Which kind of workload runs (affects the I/O profile, §6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Data processing: streams large inputs over the WAN (Figure 10).
    DataProcessing,
    /// Simulation: negligible input, pile-up overlay via Chirp (Figure 11).
    Simulation,
}

/// One workflow to run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Label used in bookkeeping and output names.
    pub name: String,
    /// DBS dataset path to process.
    pub dataset: String,
    /// Tasklets per task (the task-size knob of §4.1).
    pub tasklets_per_task: u32,
    /// Workload profile.
    pub kind: WorkloadKind,
    /// Mean CPU minutes per tasklet (paper: Gaussian μ=10).
    pub tasklet_mean_mins: f64,
    /// CPU-minute standard deviation per tasklet (paper: σ=5).
    pub tasklet_sigma_mins: f64,
    /// Output bytes per tasklet (analysis reduces data ≥ 10×, §4.2).
    pub output_bytes_per_tasklet: u64,
}

impl WorkflowConfig {
    /// A paper-shaped analysis workflow over `dataset`.
    pub fn analysis(name: impl Into<String>, dataset: impl Into<String>) -> Self {
        WorkflowConfig {
            name: name.into(),
            dataset: dataset.into(),
            tasklets_per_task: 6, // ≈1 h tasks at μ=10 min (the Fig. 3 optimum)
            kind: WorkloadKind::DataProcessing,
            tasklet_mean_mins: 10.0,
            tasklet_sigma_mins: 5.0,
            output_bytes_per_tasklet: 12_000_000, // ~12 MB → 10–100 MB files
        }
    }

    /// A simulation workflow (no input dataset streaming).
    pub fn simulation(name: impl Into<String>) -> Self {
        WorkflowConfig {
            name: name.into(),
            dataset: String::new(),
            tasklets_per_task: 6,
            kind: WorkloadKind::Simulation,
            tasklet_mean_mins: 10.0,
            tasklet_sigma_mins: 5.0,
            output_bytes_per_tasklet: 12_000_000,
        }
    }
}

/// Infrastructure sizing (proxies, stage-out, network).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InfraConfig {
    /// Number of Squid proxies deployed.
    pub n_squids: u32,
    /// Number of foremen between master and workers (paper: 4).
    pub n_foremen: u32,
    /// Chirp maximum concurrent connections.
    pub chirp_connections: u32,
    /// Campus uplink bandwidth in Gbit/s (paper: 10).
    pub wan_gbits: f64,
    /// Use the Parrot alien cache (concurrent population, §4.3).
    pub alien_cache: bool,
}

impl Default for InfraConfig {
    fn default() -> Self {
        InfraConfig {
            n_squids: 2,
            n_foremen: 4,
            chirp_connections: 64,
            wan_gbits: 10.0,
            alien_cache: true,
        }
    }
}

/// Worker shape and provisioning targets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// Cores per worker (paper: 8).
    pub cores_per_worker: u32,
    /// Target simultaneously live cores.
    pub target_cores: u32,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            cores_per_worker: 8,
            target_cores: 10_000,
        }
    }
}

/// Exponential backoff schedule with deterministic jitter.
///
/// Delay for the `n`-th consecutive failure is
/// `base * factor^(n-1)`, capped at `max`, then jittered by a uniform
/// `±jitter` fraction drawn from the caller's [`SimRng`] — the only
/// randomness source permitted under the determinism lint.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay after the first failure. `ZERO` disables the wait entirely.
    pub base: SimDuration,
    /// Multiplier applied per additional consecutive failure (≥ 1).
    pub factor: f64,
    /// Ceiling on the un-jittered delay.
    pub max: SimDuration,
    /// Jitter fraction in `[0, 1]`: the delay is scaled by a uniform
    /// draw from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Backoff {
    /// A constant (non-growing, un-jittered) backoff.
    pub fn fixed(delay: SimDuration) -> Self {
        Backoff {
            base: delay,
            factor: 1.0,
            max: delay,
            jitter: 0.0,
        }
    }

    /// Delay before the next try after `failures` consecutive failures
    /// (`failures >= 1`; zero is treated as one).
    pub fn delay(&self, failures: u32, rng: &mut SimRng) -> SimDuration {
        if self.base.is_zero() {
            return SimDuration::ZERO;
        }
        let exp = failures.saturating_sub(1).min(1023);
        // Cap in f64-space *before* converting: factor^exp can reach
        // +inf, and from_secs_f64 clamps non-finite inputs to ZERO,
        // which would turn "wait very long" into "retry immediately".
        let secs =
            (self.base.as_secs_f64() * self.factor.powi(exp as i32)).min(self.max.as_secs_f64());
        let scale = 1.0 + self.jitter * (2.0 * rng.f64() - 1.0);
        SimDuration::from_secs_f64(secs * scale)
    }
}

/// Optional per-segment watchdog deadlines, measured from entry into the
/// segment. `None` leaves that segment unguarded (legacy behaviour).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentDeadlines {
    /// Sandbox unpack + CVMFS environment population.
    pub env_setup: Option<SimDuration>,
    /// Input staging: WAN stream open/transfer or Chirp read.
    pub stage_in: Option<SimDuration>,
    /// CPU execution (for streaming tasks this spans the stream too).
    pub execute: Option<SimDuration>,
    /// Output upload through Chirp.
    pub stage_out: Option<SimDuration>,
}

/// Failure-handling policy: how long to watch each segment, how often to
/// retry, and how to back off (§5's troubleshooting loop, made explicit).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per task before it is dead-lettered. `None` retries
    /// forever (the legacy behaviour).
    pub max_attempts: Option<u32>,
    /// Backoff for the slot hold after an `EnvInit` failure, keyed by the
    /// worker's consecutive-failure streak (replaces the old hardcoded
    /// 15-minute hold).
    pub slot_hold: Backoff,
    /// Backoff before a failed task re-enters the dispatch queue, keyed
    /// by the task's attempt count.
    pub requeue: Backoff,
    /// Watchdog deadlines per segment.
    pub deadlines: SegmentDeadlines,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: None,
            // First EnvInit failure holds the slot 15 min (the paper's
            // squid-recovery pause), doubling per consecutive failure.
            slot_hold: Backoff {
                base: SimDuration::from_mins(15),
                factor: 2.0,
                max: SimDuration::from_hours(2),
                jitter: 0.1,
            },
            // Failed tasks historically re-queued immediately.
            requeue: Backoff::fixed(SimDuration::ZERO),
            deadlines: SegmentDeadlines::default(),
        }
    }
}

/// Durability policy for the Lobster DB journal (see `docs/recovery.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalPolicy {
    /// Compact a shard file into a snapshot frame after this many
    /// appended records, bounding replay cost after a crash. `None`
    /// never compacts (full-journal replay on recovery).
    pub snapshot_every_records: Option<u64>,
    /// Group-commit threshold in buffered records (across all shard
    /// files): appends buffer in memory and reach disk together when
    /// either threshold is crossed. `1` is write-through.
    pub group_commit_records: u64,
    /// Group-commit threshold in buffered bytes.
    pub group_commit_bytes: u64,
}

impl Default for JournalPolicy {
    fn default() -> Self {
        JournalPolicy {
            snapshot_every_records: Some(4096),
            group_commit_records: 64,
            group_commit_bytes: 128 * 1024,
        }
    }
}

impl JournalPolicy {
    /// Never compact, write through: every record commits immediately
    /// and recovery replays the whole journal. The byte-conservative
    /// policy (and what [`crate::db::LobsterDb::open`] uses).
    pub fn never() -> Self {
        JournalPolicy {
            snapshot_every_records: None,
            group_commit_records: 1,
            group_commit_bytes: u64::MAX,
        }
    }
}

/// The top-level Lobster configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LobsterConfig {
    /// Workflows to execute.
    pub workflows: Vec<WorkflowConfig>,
    /// How tasks obtain input data.
    pub access: DataAccessMode,
    /// How outputs are merged.
    pub merge: MergeMode,
    /// Target merged-file size in bytes (paper: 3–4 GB).
    pub merge_target_bytes: u64,
    /// Infrastructure sizing.
    pub infra: InfraConfig,
    /// Worker shape.
    pub workers: WorkerConfig,
    /// Failure handling: watchdog deadlines, retry budget, backoff.
    pub retry: RetryPolicy,
    /// Journal durability: snapshot/compaction cadence.
    pub journal: JournalPolicy,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Default for LobsterConfig {
    fn default() -> Self {
        LobsterConfig {
            workflows: vec![WorkflowConfig::analysis("ttbar", "/TTJets/Spring14/AOD")],
            access: DataAccessMode::Stream,
            merge: MergeMode::Interleaved,
            merge_target_bytes: 3_500_000_000,
            infra: InfraConfig::default(),
            workers: WorkerConfig::default(),
            retry: RetryPolicy::default(),
            journal: JournalPolicy::default(),
            seed: 0xC0FFEE,
        }
    }
}

impl LobsterConfig {
    /// Parse a configuration from JSON text.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Validate invariants; returns a list of problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.workflows.is_empty() {
            problems.push("no workflows configured".into());
        }
        for w in &self.workflows {
            if w.tasklets_per_task == 0 {
                problems.push(format!("workflow {}: tasklets_per_task is 0", w.name));
            }
            if w.kind == WorkloadKind::DataProcessing && w.dataset.is_empty() {
                problems.push(format!(
                    "workflow {}: data processing without dataset",
                    w.name
                ));
            }
            if w.tasklet_mean_mins <= 0.0 {
                problems.push(format!("workflow {}: non-positive tasklet mean", w.name));
            }
        }
        if self.workers.cores_per_worker == 0 {
            problems.push("cores_per_worker is 0".into());
        }
        if self.workers.target_cores == 0 {
            problems.push("target_cores is 0".into());
        }
        if self.infra.n_squids == 0 {
            problems.push("need at least one squid proxy".into());
        }
        if self.merge_target_bytes == 0 {
            problems.push("merge_target_bytes is 0".into());
        }
        if self.retry.max_attempts == Some(0) {
            problems.push("retry.max_attempts of 0 would dead-letter every task".into());
        }
        for (name, b) in [
            ("slot_hold", &self.retry.slot_hold),
            ("requeue", &self.retry.requeue),
        ] {
            if !b.factor.is_finite() || b.factor < 1.0 {
                problems.push(format!("retry.{name}: backoff factor must be >= 1"));
            }
            if !(0.0..=1.0).contains(&b.jitter) {
                problems.push(format!("retry.{name}: jitter must be in [0, 1]"));
            }
            if b.max < b.base {
                problems.push(format!("retry.{name}: max below base"));
            }
        }
        if self.journal.snapshot_every_records == Some(0) {
            problems
                .push("journal.snapshot_every_records of 0 would compact on every append".into());
        }
        if self.journal.group_commit_records == 0 {
            problems.push("journal.group_commit_records of 0 would never commit".into());
        }
        if self.journal.group_commit_bytes == 0 {
            problems.push("journal.group_commit_bytes of 0 would never commit".into());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(LobsterConfig::default().validate().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = LobsterConfig::default();
        let json = cfg.to_json();
        let back = LobsterConfig::from_json(&json).unwrap();
        assert_eq!(back.workflows.len(), 1);
        assert_eq!(back.workers.target_cores, 10_000);
        assert_eq!(back.seed, 0xC0FFEE);
    }

    #[test]
    fn validation_catches_problems() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows[0].tasklets_per_task = 0;
        cfg.workflows[0].dataset.clear();
        cfg.workers.cores_per_worker = 0;
        let problems = cfg.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn journal_policy_roundtrip_and_validation() {
        let mut cfg = LobsterConfig::default();
        assert_eq!(cfg.journal.snapshot_every_records, Some(4096));
        assert_eq!(cfg.journal.group_commit_records, 64);
        cfg.journal = JournalPolicy::never();
        assert_eq!(
            cfg.journal.group_commit_records, 1,
            "never() is write-through"
        );
        let back = LobsterConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.journal, JournalPolicy::never());
        cfg.journal.snapshot_every_records = Some(0);
        cfg.journal.group_commit_records = 0;
        cfg.journal.group_commit_bytes = 0;
        let problems = cfg.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn simulation_workflow_needs_no_dataset() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows = vec![WorkflowConfig::simulation("gen")];
        assert!(cfg.validate().is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lobster-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        let cfg = LobsterConfig::default();
        cfg.save(&path).unwrap();
        let back = LobsterConfig::load(&path).unwrap();
        assert_eq!(back.merge_target_bytes, cfg.merge_target_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff {
            base: SimDuration::from_mins(15),
            factor: 2.0,
            max: SimDuration::from_hours(2),
            jitter: 0.0,
        };
        let mut rng = SimRng::new(7);
        assert_eq!(b.delay(1, &mut rng), SimDuration::from_mins(15));
        assert_eq!(b.delay(2, &mut rng), SimDuration::from_mins(30));
        assert_eq!(b.delay(3, &mut rng), SimDuration::from_mins(60));
        // 15 min * 2^3 = 120 min; further failures stay capped.
        assert_eq!(b.delay(4, &mut rng), SimDuration::from_hours(2));
        assert_eq!(b.delay(40, &mut rng), SimDuration::from_hours(2));
        // Astronomically many failures must not overflow to ZERO.
        assert_eq!(b.delay(u32::MAX, &mut rng), SimDuration::from_hours(2));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let b = Backoff {
            base: SimDuration::from_mins(10),
            factor: 1.0,
            max: SimDuration::from_mins(10),
            jitter: 0.2,
        };
        let mut rng = SimRng::new(11);
        for _ in 0..200 {
            let d = b.delay(1, &mut rng).as_mins_f64();
            assert!((8.0..=12.0).contains(&d), "jittered delay {d} min");
        }
    }

    #[test]
    fn zero_base_backoff_is_free() {
        let mut rng = SimRng::new(3);
        let b = Backoff::fixed(SimDuration::ZERO);
        assert_eq!(b.delay(5, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn retry_policy_roundtrips_with_deadlines() {
        let mut cfg = LobsterConfig::default();
        cfg.retry.max_attempts = Some(4);
        cfg.retry.deadlines.stage_in = Some(SimDuration::from_mins(30));
        let back = LobsterConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.retry.max_attempts, Some(4));
        assert_eq!(
            back.retry.deadlines.stage_in,
            Some(SimDuration::from_mins(30))
        );
        assert_eq!(back.retry.deadlines.execute, None);
        assert_eq!(back.retry.slot_hold, cfg.retry.slot_hold);
    }

    #[test]
    fn validation_catches_bad_retry_policy() {
        let mut cfg = LobsterConfig::default();
        cfg.retry.max_attempts = Some(0);
        cfg.retry.slot_hold.factor = 0.5;
        cfg.retry.requeue.jitter = 2.0;
        cfg.retry.requeue.base = SimDuration::from_mins(10);
        cfg.retry.requeue.max = SimDuration::from_mins(1);
        let problems = cfg.validate();
        assert_eq!(problems.len(), 4, "{problems:?}");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("lobster-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(LobsterConfig::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
