//! Lobster configuration.
//!
//! "An execution begins with the main Lobster process that is invoked by
//! the user to initiate a workload. The user provides a configuration file
//! which describes the input data sources and the analysis code" (§3).
//!
//! The configuration is JSON on disk; every knob that the evaluation
//! sweeps (task size, data access mode, merging mode, worker shape,
//! infrastructure sizing) lives here with paper-calibrated defaults.

use crate::access::DataAccessMode;
use crate::merge::MergeMode;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Which kind of workload runs (affects the I/O profile, §6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Data processing: streams large inputs over the WAN (Figure 10).
    DataProcessing,
    /// Simulation: negligible input, pile-up overlay via Chirp (Figure 11).
    Simulation,
}

/// One workflow to run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Label used in bookkeeping and output names.
    pub name: String,
    /// DBS dataset path to process.
    pub dataset: String,
    /// Tasklets per task (the task-size knob of §4.1).
    pub tasklets_per_task: u32,
    /// Workload profile.
    pub kind: WorkloadKind,
    /// Mean CPU minutes per tasklet (paper: Gaussian μ=10).
    pub tasklet_mean_mins: f64,
    /// CPU-minute standard deviation per tasklet (paper: σ=5).
    pub tasklet_sigma_mins: f64,
    /// Output bytes per tasklet (analysis reduces data ≥ 10×, §4.2).
    pub output_bytes_per_tasklet: u64,
}

impl WorkflowConfig {
    /// A paper-shaped analysis workflow over `dataset`.
    pub fn analysis(name: impl Into<String>, dataset: impl Into<String>) -> Self {
        WorkflowConfig {
            name: name.into(),
            dataset: dataset.into(),
            tasklets_per_task: 6, // ≈1 h tasks at μ=10 min (the Fig. 3 optimum)
            kind: WorkloadKind::DataProcessing,
            tasklet_mean_mins: 10.0,
            tasklet_sigma_mins: 5.0,
            output_bytes_per_tasklet: 12_000_000, // ~12 MB → 10–100 MB files
        }
    }

    /// A simulation workflow (no input dataset streaming).
    pub fn simulation(name: impl Into<String>) -> Self {
        WorkflowConfig {
            name: name.into(),
            dataset: String::new(),
            tasklets_per_task: 6,
            kind: WorkloadKind::Simulation,
            tasklet_mean_mins: 10.0,
            tasklet_sigma_mins: 5.0,
            output_bytes_per_tasklet: 12_000_000,
        }
    }
}

/// Infrastructure sizing (proxies, stage-out, network).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InfraConfig {
    /// Number of Squid proxies deployed.
    pub n_squids: u32,
    /// Number of foremen between master and workers (paper: 4).
    pub n_foremen: u32,
    /// Chirp maximum concurrent connections.
    pub chirp_connections: u32,
    /// Campus uplink bandwidth in Gbit/s (paper: 10).
    pub wan_gbits: f64,
    /// Use the Parrot alien cache (concurrent population, §4.3).
    pub alien_cache: bool,
}

impl Default for InfraConfig {
    fn default() -> Self {
        InfraConfig {
            n_squids: 2,
            n_foremen: 4,
            chirp_connections: 64,
            wan_gbits: 10.0,
            alien_cache: true,
        }
    }
}

/// Worker shape and provisioning targets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// Cores per worker (paper: 8).
    pub cores_per_worker: u32,
    /// Target simultaneously live cores.
    pub target_cores: u32,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            cores_per_worker: 8,
            target_cores: 10_000,
        }
    }
}

/// The top-level Lobster configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LobsterConfig {
    /// Workflows to execute.
    pub workflows: Vec<WorkflowConfig>,
    /// How tasks obtain input data.
    pub access: DataAccessMode,
    /// How outputs are merged.
    pub merge: MergeMode,
    /// Target merged-file size in bytes (paper: 3–4 GB).
    pub merge_target_bytes: u64,
    /// Infrastructure sizing.
    pub infra: InfraConfig,
    /// Worker shape.
    pub workers: WorkerConfig,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Default for LobsterConfig {
    fn default() -> Self {
        LobsterConfig {
            workflows: vec![WorkflowConfig::analysis("ttbar", "/TTJets/Spring14/AOD")],
            access: DataAccessMode::Stream,
            merge: MergeMode::Interleaved,
            merge_target_bytes: 3_500_000_000,
            infra: InfraConfig::default(),
            workers: WorkerConfig::default(),
            seed: 0xC0FFEE,
        }
    }
}

impl LobsterConfig {
    /// Parse a configuration from JSON text.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Validate invariants; returns a list of problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.workflows.is_empty() {
            problems.push("no workflows configured".into());
        }
        for w in &self.workflows {
            if w.tasklets_per_task == 0 {
                problems.push(format!("workflow {}: tasklets_per_task is 0", w.name));
            }
            if w.kind == WorkloadKind::DataProcessing && w.dataset.is_empty() {
                problems.push(format!(
                    "workflow {}: data processing without dataset",
                    w.name
                ));
            }
            if w.tasklet_mean_mins <= 0.0 {
                problems.push(format!("workflow {}: non-positive tasklet mean", w.name));
            }
        }
        if self.workers.cores_per_worker == 0 {
            problems.push("cores_per_worker is 0".into());
        }
        if self.workers.target_cores == 0 {
            problems.push("target_cores is 0".into());
        }
        if self.infra.n_squids == 0 {
            problems.push("need at least one squid proxy".into());
        }
        if self.merge_target_bytes == 0 {
            problems.push("merge_target_bytes is 0".into());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(LobsterConfig::default().validate().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = LobsterConfig::default();
        let json = cfg.to_json();
        let back = LobsterConfig::from_json(&json).unwrap();
        assert_eq!(back.workflows.len(), 1);
        assert_eq!(back.workers.target_cores, 10_000);
        assert_eq!(back.seed, 0xC0FFEE);
    }

    #[test]
    fn validation_catches_problems() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows[0].tasklets_per_task = 0;
        cfg.workflows[0].dataset.clear();
        cfg.workers.cores_per_worker = 0;
        let problems = cfg.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn simulation_workflow_needs_no_dataset() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows = vec![WorkflowConfig::simulation("gen")];
        assert!(cfg.validate().is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lobster-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        let cfg = LobsterConfig::default();
        cfg.save(&path).unwrap();
        let back = LobsterConfig::load(&path).unwrap();
        assert_eq!(back.merge_target_bytes, cfg.merge_target_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("lobster-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(LobsterConfig::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
