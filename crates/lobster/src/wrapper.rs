//! The instrumented task wrapper.
//!
//! "Each task consists of a wrapper which performs pre- and post-
//! processing around the actual application" (§3). For troubleshooting,
//! "the wrapper script that runs every user task is heavily instrumented
//! ... broken down into logical segments ... Each segment records a
//! timestamp and performs an internal test for success or failure, with a
//! unique failure code" (§5).
//!
//! [`SegmentReport`] is that record: the per-segment wall-clock breakdown
//! (shared [`TaskTimes`] vocabulary with `wqueue`), the failing segment if
//! any, and identity fields the master adds (attempt, worker, dispatch
//! and finish times).

use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use wqueue::task::{Category, FailureCode, TaskId, TaskTimes};

/// Wrapper segments, in execution order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Basic machine compatibility pre-check.
    Compatibility,
    /// Software environment setup (Parrot + CVMFS via squid).
    EnvInit,
    /// Obtaining input data.
    StageIn,
    /// The application itself.
    Execute,
    /// Writing output to the data tier.
    StageOut,
}

impl Segment {
    /// Execution-order rank (Compatibility first, StageOut last).
    pub fn order(self) -> u8 {
        match self {
            Segment::Compatibility => 0,
            Segment::EnvInit => 1,
            Segment::StageIn => 2,
            Segment::Execute => 3,
            Segment::StageOut => 4,
        }
    }

    /// The failure code this segment emits.
    pub fn failure_code(self) -> FailureCode {
        match self {
            Segment::Compatibility => FailureCode::Incompatible,
            Segment::EnvInit => FailureCode::EnvSetup,
            Segment::StageIn => FailureCode::StageIn,
            Segment::Execute => FailureCode::AppError,
            Segment::StageOut => FailureCode::StageOut,
        }
    }
}

/// The complete instrumentation record of one task attempt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// Task identity.
    pub task: TaskId,
    /// Task category.
    pub category: Category,
    /// Attempt number (0-based).
    pub attempt: u32,
    /// Worker that ran (or hosted) the attempt.
    pub worker: u64,
    /// Per-segment wall-clock breakdown.
    pub times: TaskTimes,
    /// The failing segment, if the attempt failed.
    pub failed_segment: Option<Segment>,
    /// The failure was forced by a segment watchdog deadline (the task
    /// was stuck mid-flight, not rejected at admission).
    pub watchdog: bool,
    /// Eviction cut the attempt short.
    pub evicted: bool,
    /// Dispatch instant.
    pub dispatched_at: SimTime,
    /// Completion (or loss) instant.
    pub finished_at: SimTime,
    /// Output bytes produced (0 unless fully successful).
    pub output_bytes: u64,
}

impl SegmentReport {
    /// True if the attempt succeeded end-to-end.
    pub fn is_success(&self) -> bool {
        self.failed_segment.is_none() && !self.evicted
    }

    /// The failure code to report upstream, if any.
    pub fn failure_code(&self) -> Option<FailureCode> {
        if self.evicted {
            Some(FailureCode::Evicted)
        } else {
            self.failed_segment.map(Segment::failure_code)
        }
    }

    /// Wall-clock from dispatch to finish.
    pub fn wall(&self) -> SimDuration {
        self.finished_at - self.dispatched_at
    }

    /// Lost runtime: wall-clock that produced no output (whole attempt on
    /// failure/eviction, zero on success). Feeds the §5 diagnosis "high
    /// values of lost runtime suggest that the target task size is too
    /// high".
    pub fn lost_runtime(&self) -> SimDuration {
        if self.is_success() {
            SimDuration::ZERO
        } else {
            self.wall()
        }
    }

    /// True if the attempt carries a real duration measurement for `seg`,
    /// i.e. the wrapper reached the segment and its time field was
    /// recorded. Attempts that died earlier left a zero placeholder, and
    /// averaging those zeros into a segment's mean dilutes it — exactly
    /// during the failure storms where the §5 diagnosis matters most.
    ///
    /// Recording semantics per segment: `env_setup` is written when
    /// EnvInit *completes*, so a failure inside EnvInit has no
    /// measurement; `stage_in`/`cpu`/`stage_out` are written when the
    /// segment *starts* (admitted grant / planned duration), so a
    /// watchdog abort inside the segment still measured it, while an
    /// admission rejection (non-watchdog failure at the segment itself)
    /// never did. Evicted attempts stopped at an unknown point: a
    /// nonzero recorded time is the only evidence the segment was
    /// reached.
    pub fn measured(&self, seg: Segment) -> bool {
        if let Some(f) = self.failed_segment {
            return match seg {
                Segment::Compatibility => true,
                Segment::EnvInit => f.order() > seg.order(),
                _ => f.order() > seg.order() || (f == seg && self.watchdog),
            };
        }
        if self.evicted {
            let t = match seg {
                Segment::Compatibility => return true,
                Segment::EnvInit => self.times.env_setup,
                Segment::StageIn => self.times.stage_in,
                Segment::Execute => self.times.cpu,
                Segment::StageOut => self.times.stage_out,
            };
            return !t.is_zero();
        }
        true
    }
}

/// Incremental builder used by the drivers as segments complete.
#[derive(Clone, Debug)]
pub struct ReportBuilder {
    report: SegmentReport,
}

impl ReportBuilder {
    /// Start a report at dispatch time.
    pub fn new(
        task: TaskId,
        category: Category,
        attempt: u32,
        worker: u64,
        dispatched_at: SimTime,
    ) -> Self {
        ReportBuilder {
            report: SegmentReport {
                task,
                category,
                attempt,
                worker,
                times: TaskTimes::default(),
                failed_segment: None,
                watchdog: false,
                evicted: false,
                dispatched_at,
                finished_at: dispatched_at,
                output_bytes: 0,
            },
        }
    }

    /// Mutable access to the timing record.
    pub fn times_mut(&mut self) -> &mut TaskTimes {
        &mut self.report.times
    }

    /// Mark a segment as failed.
    pub fn fail(mut self, segment: Segment, at: SimTime) -> SegmentReport {
        self.report.failed_segment = Some(segment);
        self.report.finished_at = at;
        self.report
    }

    /// Mark a segment as aborted by its watchdog deadline: same failure
    /// code as [`fail`](Self::fail), but flagged so the monitor can tell
    /// "stuck and killed" from "rejected at admission".
    pub fn abort_by_watchdog(mut self, segment: Segment, at: SimTime) -> SegmentReport {
        self.report.watchdog = true;
        self.fail(segment, at)
    }

    /// Mark the attempt evicted.
    pub fn evict(mut self, at: SimTime) -> SegmentReport {
        self.report.evicted = true;
        self.report.finished_at = at;
        self.report
    }

    /// Complete successfully with `output_bytes`.
    pub fn succeed(mut self, at: SimTime, output_bytes: u64) -> SegmentReport {
        self.report.finished_at = at;
        self.report.output_bytes = output_bytes;
        self.report
    }

    /// Peek at the task id.
    pub fn task(&self) -> TaskId {
        self.report.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> ReportBuilder {
        ReportBuilder::new(
            TaskId(1),
            Category::Analysis,
            0,
            42,
            SimTime::from_secs(100),
        )
    }

    #[test]
    fn segment_failure_codes_are_distinct() {
        let codes: std::collections::HashSet<FailureCode> = [
            Segment::Compatibility,
            Segment::EnvInit,
            Segment::StageIn,
            Segment::Execute,
            Segment::StageOut,
        ]
        .iter()
        .map(|s| s.failure_code())
        .collect();
        assert_eq!(codes.len(), 5);
    }

    #[test]
    fn success_report() {
        let mut b = builder();
        b.times_mut().cpu = SimDuration::from_mins(30);
        let r = b.succeed(SimTime::from_secs(4000), 5_000_000);
        assert!(r.is_success());
        assert_eq!(r.failure_code(), None);
        assert_eq!(r.output_bytes, 5_000_000);
        assert_eq!(r.wall(), SimDuration::from_secs(3900));
        assert_eq!(r.lost_runtime(), SimDuration::ZERO);
    }

    #[test]
    fn failed_segment_report() {
        let r = builder().fail(Segment::StageIn, SimTime::from_secs(400));
        assert!(!r.is_success());
        assert_eq!(r.failure_code(), Some(FailureCode::StageIn));
        assert_eq!(r.lost_runtime(), SimDuration::from_secs(300));
    }

    #[test]
    fn watchdog_abort_report() {
        let r = builder().abort_by_watchdog(Segment::StageIn, SimTime::from_secs(500));
        assert!(!r.is_success());
        assert!(r.watchdog);
        assert_eq!(r.failure_code(), Some(FailureCode::StageIn));
        let plain = builder().fail(Segment::StageIn, SimTime::from_secs(500));
        assert!(!plain.watchdog, "admission-time failures are not watchdog");
    }

    #[test]
    fn eviction_report() {
        let r = builder().evict(SimTime::from_secs(700));
        assert!(!r.is_success());
        assert!(r.evicted);
        assert_eq!(r.failure_code(), Some(FailureCode::Evicted));
        assert_eq!(r.lost_runtime(), SimDuration::from_secs(600));
    }

    #[test]
    fn measured_tracks_progress() {
        // Success: every segment was measured.
        let ok = builder().succeed(SimTime::from_secs(200), 1);
        assert!(ok.measured(Segment::EnvInit));
        assert!(ok.measured(Segment::StageOut));

        // Watchdog abort in EnvInit: setup never completed (no
        // measurement), downstream segments never entered.
        let stuck = builder().abort_by_watchdog(Segment::EnvInit, SimTime::from_secs(500));
        assert!(stuck.measured(Segment::Compatibility));
        assert!(!stuck.measured(Segment::EnvInit));
        assert!(!stuck.measured(Segment::StageIn));
        assert!(!stuck.measured(Segment::StageOut));

        // Watchdog abort in StageIn: the admitted grant recorded a
        // stage-in time, so that segment *was* measured.
        let mut b = builder();
        b.times_mut().env_setup = SimDuration::from_mins(3);
        b.times_mut().stage_in = SimDuration::from_mins(40);
        let slow = b.abort_by_watchdog(Segment::StageIn, SimTime::from_secs(3000));
        assert!(slow.measured(Segment::EnvInit));
        assert!(slow.measured(Segment::StageIn));
        assert!(!slow.measured(Segment::Execute));

        // Admission rejection at StageIn (non-watchdog): nothing was
        // admitted, so no stage-in measurement exists.
        let rejected = builder().fail(Segment::StageIn, SimTime::from_secs(400));
        assert!(rejected.measured(Segment::EnvInit));
        assert!(!rejected.measured(Segment::StageIn));

        // Eviction: nonzero recorded times are the evidence.
        let mut b = builder();
        b.times_mut().env_setup = SimDuration::from_mins(2);
        let evicted = b.evict(SimTime::from_secs(700));
        assert!(evicted.measured(Segment::EnvInit));
        assert!(!evicted.measured(Segment::StageIn));
    }

    #[test]
    fn serde_roundtrip() {
        let r = builder().succeed(SimTime::from_secs(200), 1);
        let json = serde_json::to_string(&r).unwrap();
        let back: SegmentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.task, r.task);
        assert!(back.is_success());
    }
}
