//! Monitoring, accounting and troubleshooting (§5).
//!
//! Every wrapper attempt produces a [`SegmentReport`]; the monitor ingests
//! them into:
//!
//! * [`Accounting`] — the runtime breakdown of Figure 8 (CPU / I/O /
//!   failed / WQ stage-in / WQ stage-out hours and fractions);
//! * [`Timeline`] — the per-time-bin series of Figures 10 and 11
//!   (concurrent tasks, completions, failures, CPU/wall efficiency,
//!   setup and stage-out times);
//! * [`Advisor`] — the §5 diagnosis rules, mapping metric pathologies to
//!   operator advice (task size too high → eviction losses; slow sandbox
//!   stage-in → more foremen; long setup → overloaded squid; long
//!   stage-in/out → overloaded chirp).

use crate::wrapper::{Segment, SegmentReport};
use serde::{Deserialize, Serialize};
use simkit::stats::{Histogram, TimeSeries};
use simkit::time::{SimDuration, SimTime};
use wqueue::task::FailureCode;

/// Figure 8: cumulative runtime by phase.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Accounting {
    /// CPU hours inside successful task attempts.
    pub cpu: f64,
    /// I/O hours inside successful attempts (env setup + stage-in +
    /// stream stalls + stage-out).
    pub io: f64,
    /// Hours consumed by failed or evicted attempts.
    pub failed: f64,
    /// Work Queue sandbox/input transfer hours.
    pub wq_stage_in: f64,
    /// Work Queue result collection hours.
    pub wq_stage_out: f64,
    /// Attempts that were retries (attempt number > 0).
    pub retries: u64,
    /// Attempts killed by a segment watchdog deadline.
    pub watchdog_aborts: u64,
    /// Tasks that exhausted their retry budget.
    pub dead_lettered: u64,
    /// Hours spent waiting in retry/slot-hold backoff.
    pub backoff_hours: f64,
}

impl Accounting {
    /// Ingest one attempt.
    pub fn record(&mut self, r: &SegmentReport) {
        let h = |d: SimDuration| d.as_hours_f64();
        if r.attempt > 0 {
            self.retries += 1;
        }
        if r.watchdog {
            self.watchdog_aborts += 1;
        }
        if r.is_success() {
            self.cpu += h(r.times.cpu);
            self.io += h(r.times.env_setup)
                + h(r.times.stage_in)
                + h(r.times.io_wait)
                + h(r.times.stage_out);
            self.wq_stage_in += h(r.times.wq_stage_in);
            self.wq_stage_out += h(r.times.wq_stage_out);
        } else {
            self.failed += h(r.wall());
        }
    }

    /// Record time spent in a backoff wait (slot hold or requeue delay).
    pub fn record_backoff(&mut self, d: SimDuration) {
        self.backoff_hours += d.as_hours_f64();
    }

    /// Record a task landing in the dead-letter ledger.
    pub fn record_dead_letter(&mut self) {
        self.dead_lettered += 1;
    }

    /// Total hours across all phases.
    pub fn total(&self) -> f64 {
        self.cpu + self.io + self.failed + self.wq_stage_in + self.wq_stage_out
    }

    /// The Figure 8 table: `(phase, hours, fraction)` rows in paper order.
    pub fn table(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total().max(f64::MIN_POSITIVE);
        [
            ("Task CPU Time", self.cpu),
            ("Task I/O Time", self.io),
            ("Task Failed", self.failed),
            ("WQ Stage In", self.wq_stage_in),
            ("WQ Stage Out", self.wq_stage_out),
        ]
        .into_iter()
        .map(|(name, hours)| (name, hours, hours / total))
        .collect()
    }
}

/// Figures 10/11: the run's time evolution, binned.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Task-seconds present per bin (concurrency = sum / bin width).
    occupancy: TimeSeries,
    /// CPU-seconds accrued per bin.
    cpu: TimeSeries,
    /// Completions per bin.
    completed: TimeSeries,
    /// Failures per bin.
    failed: TimeSeries,
    /// Environment setup minutes, recorded at attempt finish.
    setup_mins: TimeSeries,
    /// Stage-out minutes, recorded at attempt finish.
    stageout_mins: TimeSeries,
    /// Failure codes per bin, for the Figure 11 bottom panel.
    failures_by_code: Vec<(SimTime, FailureCode)>,
    /// Watchdog aborts with the segment whose deadline fired.
    watchdog_aborts: Vec<(SimTime, Segment)>,
    /// Dead-lettered tasks per bin.
    dead_lettered: TimeSeries,
}

impl Timeline {
    /// Timeline with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        Timeline {
            occupancy: TimeSeries::new(bin),
            cpu: TimeSeries::new(bin),
            completed: TimeSeries::new(bin),
            failed: TimeSeries::new(bin),
            setup_mins: TimeSeries::new(bin),
            stageout_mins: TimeSeries::new(bin),
            failures_by_code: Vec::new(),
            watchdog_aborts: Vec::new(),
            dead_lettered: TimeSeries::new(bin),
        }
    }

    /// Ingest one attempt.
    pub fn record(&mut self, r: &SegmentReport) {
        let (start, end) = (r.dispatched_at, r.finished_at.max(r.dispatched_at));
        let wall = (end - start).as_secs_f64();
        if wall > 0.0 {
            self.occupancy.record_spread(start, end, wall);
            // An evicted attempt reports its *planned* CPU; only the part
            // that fit inside the attempt's wall-clock actually ran.
            let cpu = r.times.cpu.as_secs_f64().min(wall);
            self.cpu.record_spread(start, end, cpu);
        }
        if r.is_success() {
            self.completed.mark(end);
            self.setup_mins.record(end, r.times.env_setup.as_mins_f64());
            self.stageout_mins
                .record(end, r.times.stage_out.as_mins_f64());
        } else {
            self.failed.mark(end);
            if let Some(code) = r.failure_code() {
                self.failures_by_code.push((end, code));
            }
            if let Some(seg) = r.failed_segment.filter(|_| r.watchdog) {
                self.watchdog_aborts.push((end, seg));
            }
        }
    }

    /// Record a task landing in the dead-letter ledger at `at`.
    pub fn record_dead_letter(&mut self, at: SimTime) {
        self.dead_lettered.mark(at);
    }

    /// Bin width.
    pub fn bin(&self) -> SimDuration {
        self.occupancy.width()
    }

    /// Mean concurrent tasks per bin (Fig. 10/11 top panel).
    pub fn concurrency(&self) -> Vec<f64> {
        let w = self.occupancy.width().as_secs_f64();
        self.occupancy.sums().iter().map(|s| s / w).collect()
    }

    /// Completions per bin.
    pub fn completions(&self) -> Vec<f64> {
        self.completed.sums()
    }

    /// Failures per bin.
    pub fn failures(&self) -> Vec<f64> {
        self.failed.sums()
    }

    /// CPU/wall efficiency per bin (Fig. 10 bottom panel).
    pub fn efficiency(&self) -> Vec<f64> {
        self.cpu
            .sums()
            .iter()
            .zip(self.occupancy.sums())
            .map(|(c, o)| if o > 0.0 { c / o } else { 0.0 })
            .collect()
    }

    /// Mean environment-setup minutes per bin (Fig. 11 second panel).
    pub fn setup_minutes(&self) -> Vec<f64> {
        self.setup_mins.means()
    }

    /// Mean stage-out minutes per bin (Fig. 11 third panel).
    pub fn stageout_minutes(&self) -> Vec<f64> {
        self.stageout_mins.means()
    }

    /// Failure events with codes (Fig. 11 bottom panel).
    pub fn failure_events(&self) -> &[(SimTime, FailureCode)] {
        &self.failures_by_code
    }

    /// Watchdog-abort events with the segment whose deadline fired.
    pub fn watchdog_events(&self) -> &[(SimTime, Segment)] {
        &self.watchdog_aborts
    }

    /// Dead-lettered tasks per bin.
    pub fn dead_letters(&self) -> Vec<f64> {
        self.dead_lettered.sums()
    }
}

/// Per-segment duration histograms (§5: "All of these records are stored
/// in the Lobster DB, so that it becomes easy to generate histograms and
/// time lines showing the distribution of behavior at each stage of the
/// execution").
#[derive(Clone, Debug)]
pub struct SegmentHistograms {
    /// Queueing delay before dispatch (minutes).
    pub queued: Histogram,
    /// Sandbox/input transfer (minutes).
    pub wq_stage_in: Histogram,
    /// Environment setup (minutes).
    pub env_setup: Histogram,
    /// Input stage-in (minutes).
    pub stage_in: Histogram,
    /// Application CPU time (minutes).
    pub cpu: Histogram,
    /// Streaming stalls (minutes).
    pub io_wait: Histogram,
    /// Output stage-out (minutes).
    pub stage_out: Histogram,
    /// Total attempt wall-clock (minutes).
    pub wall: Histogram,
}

impl Default for SegmentHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentHistograms {
    /// Histograms sized for typical HEP task attempts (0–4 h, 48 bins).
    pub fn new() -> Self {
        let mk = || Histogram::new(0.0, 240.0, 48);
        SegmentHistograms {
            queued: mk(),
            wq_stage_in: mk(),
            env_setup: mk(),
            stage_in: mk(),
            cpu: mk(),
            io_wait: mk(),
            stage_out: mk(),
            wall: mk(),
        }
    }

    /// Ingest one attempt.
    pub fn record(&mut self, r: &SegmentReport) {
        let t = &r.times;
        self.queued.record(t.queued.as_mins_f64());
        self.wq_stage_in.record(t.wq_stage_in.as_mins_f64());
        self.env_setup.record(t.env_setup.as_mins_f64());
        self.stage_in.record(t.stage_in.as_mins_f64());
        self.cpu.record(t.cpu.as_mins_f64());
        self.io_wait.record(t.io_wait.as_mins_f64());
        self.stage_out.record(t.stage_out.as_mins_f64());
        self.wall.record(r.wall().as_mins_f64());
    }

    /// `(segment, mean minutes, overflow count)` summary rows.
    pub fn summary(&self) -> Vec<(&'static str, f64, u64)> {
        let mean = |h: &Histogram| {
            let (mut sum, mut n) = (0.0, 0u64);
            for (center, count) in h.iter() {
                // simlint::allow(no-float-order): histogram buckets iterate in fixed index order
                sum += center * count as f64;
                n += count;
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        vec![
            ("queued", mean(&self.queued), self.queued.overflow()),
            (
                "wq stage-in",
                mean(&self.wq_stage_in),
                self.wq_stage_in.overflow(),
            ),
            (
                "env setup",
                mean(&self.env_setup),
                self.env_setup.overflow(),
            ),
            ("stage-in", mean(&self.stage_in), self.stage_in.overflow()),
            ("cpu", mean(&self.cpu), self.cpu.overflow()),
            ("io wait", mean(&self.io_wait), self.io_wait.overflow()),
            (
                "stage-out",
                mean(&self.stage_out),
                self.stage_out.overflow(),
            ),
            ("wall", mean(&self.wall), self.wall.overflow()),
        ]
    }
}

/// Thresholds for the §5 diagnosis rules.
#[derive(Clone, Copy, Debug)]
pub struct AdvisorConfig {
    /// Lost-runtime fraction above which task size is deemed too high.
    pub lost_runtime_frac: f64,
    /// Mean WQ stage-in minutes above which more foremen are suggested.
    pub wq_stage_in_mins: f64,
    /// Mean setup minutes above which the squid tier is deemed overloaded.
    pub setup_mins: f64,
    /// Mean stage-in/out minutes above which chirp is deemed overloaded.
    pub stage_mins: f64,
    /// Fraction of attempts aborted by one segment's watchdog above which
    /// that segment's deadline is deemed too tight.
    pub watchdog_abort_frac: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            lost_runtime_frac: 0.15,
            wq_stage_in_mins: 5.0,
            setup_mins: 20.0,
            stage_mins: 10.0,
            watchdog_abort_frac: 0.05,
        }
    }
}

/// A diagnosis produced by the advisor.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Advice {
    /// "High values of lost runtime suggest that the target task size is
    /// too high."
    ReduceTaskSize,
    /// "Long sandbox stage-in times ... suggest the usage of more foremen."
    AddForemen,
    /// "Consistently long setup times hint at an overloaded squid proxy."
    AddSquidsOrShareCaches,
    /// "Increased stage-in and stage-out times suggest an overloaded
    /// Chirp server."
    TuneChirpConnections,
    /// A large share of attempts are killed by one segment's watchdog:
    /// the deadline is tighter than the infrastructure can serve.
    RaiseSegmentDeadline {
        /// The segment whose watchdog keeps firing.
        segment: Segment,
    },
}

impl std::fmt::Display for Advice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Advice::ReduceTaskSize => write!(f, "reduce task size (high lost runtime)"),
            Advice::AddForemen => write!(f, "add foremen (long sandbox stage-in)"),
            Advice::AddSquidsOrShareCaches => {
                write!(f, "add squids or share caches (long setup times)")
            }
            Advice::TuneChirpConnections => {
                write!(f, "tune chirp connections (long stage-in/out)")
            }
            Advice::RaiseSegmentDeadline { segment } => {
                write!(f, "raise {segment:?} watchdog deadline (frequent aborts)")
            }
        }
    }
}

/// Stable index for per-segment counters.
fn segment_index(s: Segment) -> usize {
    match s {
        Segment::Compatibility => 0,
        Segment::EnvInit => 1,
        Segment::StageIn => 2,
        Segment::Execute => 3,
        Segment::StageOut => 4,
    }
}

const SEGMENTS: [Segment; 5] = [
    Segment::Compatibility,
    Segment::EnvInit,
    Segment::StageIn,
    Segment::Execute,
    Segment::StageOut,
];

/// Online mean over only the attempts that produced a measurement —
/// the denominator is per-signal, not the total attempt count, so
/// failure storms that die early cannot dilute a downstream segment's
/// mean.
#[derive(Clone, Copy, Debug, Default)]
struct MeanAcc {
    sum: f64,
    n: u64,
}

impl MeanAcc {
    fn add(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    fn exceeds(&self, threshold: f64) -> bool {
        self.n > 0 && self.mean() > threshold
    }
}

/// The troubleshooting advisor: aggregates attempt metrics and applies
/// the four §5 rules.
///
/// Two historical bugs shape the accumulator layout: stage-in and
/// stage-out used to be averaged into one signal (so a purely
/// one-directional Chirp overload had to reach 2× the threshold before
/// firing), and every mean used the total attempt count as denominator
/// (so early watchdog aborts diluted downstream-segment means). Each
/// signal now keeps its own [`MeanAcc`] fed only by attempts that
/// [`SegmentReport::measured`] the segment.
#[derive(Clone, Debug, Default)]
pub struct Advisor {
    wall: f64,
    lost: f64,
    n: u64,
    wq_stage_in: MeanAcc,
    setup: MeanAcc,
    stage_in: MeanAcc,
    stage_out: MeanAcc,
    watchdog_by_segment: [u64; 5],
}

impl Advisor {
    /// Fresh advisor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one attempt.
    pub fn record(&mut self, r: &SegmentReport) {
        self.n += 1;
        self.wall += r.wall().as_secs_f64();
        self.lost += r.lost_runtime().as_secs_f64();
        // Every dispatched attempt underwent WQ sandbox stage-in.
        self.wq_stage_in.add(r.times.wq_stage_in.as_mins_f64());
        if r.measured(Segment::EnvInit) {
            self.setup.add(r.times.env_setup.as_mins_f64());
        }
        if r.measured(Segment::StageIn) {
            self.stage_in.add(r.times.stage_in.as_mins_f64());
        }
        if r.measured(Segment::StageOut) {
            self.stage_out.add(r.times.stage_out.as_mins_f64());
        }
        if let Some(seg) = r.failed_segment.filter(|_| r.watchdog) {
            self.watchdog_by_segment[segment_index(seg)] += 1;
        }
    }

    /// Apply the diagnosis rules.
    pub fn diagnose(&self, cfg: &AdvisorConfig) -> Vec<Advice> {
        let mut advice = Vec::new();
        if self.n == 0 {
            return advice;
        }
        let n = self.n as f64;
        if self.wall > 0.0 && self.lost / self.wall > cfg.lost_runtime_frac {
            advice.push(Advice::ReduceTaskSize);
        }
        if self.wq_stage_in.exceeds(cfg.wq_stage_in_mins) {
            advice.push(Advice::AddForemen);
        }
        if self.setup.exceeds(cfg.setup_mins) {
            advice.push(Advice::AddSquidsOrShareCaches);
        }
        // Either direction alone exceeding the threshold means Chirp is
        // overloaded — the directions are independent signals.
        if self.stage_in.exceeds(cfg.stage_mins) || self.stage_out.exceeds(cfg.stage_mins) {
            advice.push(Advice::TuneChirpConnections);
        }
        for seg in SEGMENTS {
            let aborts = self.watchdog_by_segment[segment_index(seg)];
            if aborts as f64 / n > cfg.watchdog_abort_frac {
                advice.push(Advice::RaiseSegmentDeadline { segment: seg });
            }
        }
        advice
    }

    /// `(signal, mean minutes, samples)` rows for metrics export.
    pub fn signal_means(&self) -> Vec<(&'static str, f64, u64)> {
        vec![
            ("wq_stage_in", self.wq_stage_in.mean(), self.wq_stage_in.n),
            ("env_setup", self.setup.mean(), self.setup.n),
            ("stage_in", self.stage_in.mean(), self.stage_in.n),
            ("stage_out", self.stage_out.mean(), self.stage_out.n),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::{ReportBuilder, Segment};
    use wqueue::task::Category;

    fn report(cpu_mins: u64, io_mins: u64, fail: bool, start_s: u64, end_s: u64) -> SegmentReport {
        let mut b = ReportBuilder::new(
            wqueue::task::TaskId(1),
            Category::Analysis,
            0,
            7,
            SimTime::from_secs(start_s),
        );
        b.times_mut().cpu = SimDuration::from_mins(cpu_mins);
        b.times_mut().stage_in = SimDuration::from_mins(io_mins);
        if fail {
            b.fail(Segment::StageIn, SimTime::from_secs(end_s))
        } else {
            b.succeed(SimTime::from_secs(end_s), 100)
        }
    }

    #[test]
    fn accounting_splits_phases() {
        let mut acc = Accounting::default();
        acc.record(&report(60, 30, false, 0, 5400));
        acc.record(&report(0, 0, true, 0, 3600)); // 1 h failed
        assert!((acc.cpu - 1.0).abs() < 1e-9);
        assert!((acc.io - 0.5).abs() < 1e-9);
        assert!((acc.failed - 1.0).abs() < 1e-9);
        let table = acc.table();
        assert_eq!(table.len(), 5);
        assert_eq!(table[0].0, "Task CPU Time");
        let frac_sum: f64 = table.iter().map(|r| r.2).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accounting_table_is_finite() {
        let acc = Accounting::default();
        for (_, hours, frac) in acc.table() {
            assert_eq!(hours, 0.0);
            assert!(frac.is_finite());
        }
    }

    #[test]
    fn timeline_concurrency_and_efficiency() {
        let mut tl = Timeline::new(SimDuration::from_secs(100));
        // Two tasks inside bin 0, each 90 s wall (finishing at 90 s keeps
        // the completion mark in bin 0 — bins are half-open).
        for _ in 0..2 {
            tl.record(&report(0, 0, false, 0, 90));
        }
        // record() used cpu=0; craft one with cpu via report(…)
        let mut tl2 = Timeline::new(SimDuration::from_secs(100));
        let mut b = ReportBuilder::new(
            wqueue::task::TaskId(2),
            Category::Analysis,
            0,
            7,
            SimTime::ZERO,
        );
        b.times_mut().cpu = SimDuration::from_secs(50);
        tl2.record(&b.succeed(SimTime::from_secs(100), 1));
        assert!(
            (tl.concurrency()[0] - 1.8).abs() < 1e-9,
            "2 tasks × 90s / 100s bin"
        );
        assert_eq!(tl.completions()[0], 2.0);
        assert!((tl2.efficiency()[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn timeline_failures_tracked_with_codes() {
        let mut tl = Timeline::new(SimDuration::from_secs(60));
        tl.record(&report(0, 0, true, 0, 30));
        assert_eq!(tl.failures()[0], 1.0);
        assert_eq!(tl.failure_events().len(), 1);
        assert_eq!(tl.failure_events()[0].1, FailureCode::StageIn);
        assert!(tl.completions().first().copied().unwrap_or(0.0) == 0.0);
    }

    #[test]
    fn advisor_quiet_on_healthy_run() {
        let mut adv = Advisor::new();
        for _ in 0..10 {
            adv.record(&report(60, 2, false, 0, 4000));
        }
        assert!(adv.diagnose(&AdvisorConfig::default()).is_empty());
    }

    #[test]
    fn advisor_flags_lost_runtime() {
        let mut adv = Advisor::new();
        adv.record(&report(60, 0, false, 0, 3600));
        adv.record(&report(0, 0, true, 0, 3600)); // 50% lost
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(advice.contains(&Advice::ReduceTaskSize));
    }

    #[test]
    fn advisor_flags_overloaded_squid() {
        let mut adv = Advisor::new();
        let mut b = ReportBuilder::new(
            wqueue::task::TaskId(3),
            Category::Analysis,
            0,
            7,
            SimTime::ZERO,
        );
        b.times_mut().env_setup = SimDuration::from_mins(45);
        adv.record(&b.succeed(SimTime::from_secs(3600), 1));
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(advice.contains(&Advice::AddSquidsOrShareCaches));
    }

    #[test]
    fn advisor_flags_foremen_and_chirp() {
        let mut adv = Advisor::new();
        let mut b = ReportBuilder::new(
            wqueue::task::TaskId(4),
            Category::Analysis,
            0,
            7,
            SimTime::ZERO,
        );
        b.times_mut().wq_stage_in = SimDuration::from_mins(12);
        b.times_mut().stage_in = SimDuration::from_mins(30);
        b.times_mut().stage_out = SimDuration::from_mins(30);
        adv.record(&b.succeed(SimTime::from_secs(7200), 1));
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(advice.contains(&Advice::AddForemen));
        assert!(advice.contains(&Advice::TuneChirpConnections));
    }

    /// Regression (direction averaging): a purely one-directional Chirp
    /// overload — slow stage-out, instant stage-in — must fire the
    /// moment that direction's mean crosses the threshold. The pre-fix
    /// advisor averaged the two directions into one signal, so 15 min of
    /// stage-out read as (0 + 15)/2 = 7.5 < 10 and stayed silent until
    /// the overload reached 2× the configured threshold.
    #[test]
    fn advisor_flags_one_directional_chirp_overload() {
        let mut adv = Advisor::new();
        let mut b = ReportBuilder::new(
            wqueue::task::TaskId(5),
            Category::Analysis,
            0,
            7,
            SimTime::ZERO,
        );
        b.times_mut().stage_out = SimDuration::from_mins(15);
        adv.record(&b.succeed(SimTime::from_secs(3600), 1));
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(
            advice.contains(&Advice::TuneChirpConnections),
            "one-directional overload must fire at 1× the threshold: {advice:?}"
        );
    }

    /// Regression (denominator dilution): attempts that died before ever
    /// reaching a segment must not drag that segment's mean down. Eight
    /// watchdog aborts stuck in EnvInit plus two genuinely slow 25-min
    /// stage-ins used to average to 2.5 min over all ten attempts —
    /// masking the Chirp overload during exactly the failure storm where
    /// the diagnosis matters.
    #[test]
    fn advisor_means_not_diluted_by_early_aborts() {
        let mut adv = Advisor::new();
        for i in 0..8u64 {
            adv.record(&watchdog_report(
                Segment::EnvInit,
                i * 1000,
                i * 1000 + 600,
                0,
            ));
        }
        for i in 0..2u64 {
            let mut b = ReportBuilder::new(
                wqueue::task::TaskId(6 + i),
                Category::Analysis,
                0,
                7,
                SimTime::from_secs(i * 5000),
            );
            b.times_mut().stage_in = SimDuration::from_mins(25);
            adv.record(&b.succeed(SimTime::from_secs(i * 5000 + 3600), 1));
        }
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(
            advice.contains(&Advice::TuneChirpConnections),
            "25-min stage-ins must flag Chirp even amid early aborts: {advice:?}"
        );
        let means = adv.signal_means();
        let stage_in = means.iter().find(|m| m.0 == "stage_in").unwrap();
        assert_eq!(stage_in.2, 2, "only attempts that reached stage-in count");
        assert!((stage_in.1 - 25.0).abs() < 1e-9);
    }

    /// Same dilution bug, setup direction: early Compatibility aborts
    /// must not mask an overloaded squid tier.
    #[test]
    fn advisor_setup_mean_not_diluted_by_early_aborts() {
        let mut adv = Advisor::new();
        for i in 0..8u64 {
            adv.record(&watchdog_report(
                Segment::Compatibility,
                i * 1000,
                i * 1000 + 60,
                0,
            ));
        }
        for i in 0..2u64 {
            let mut b = ReportBuilder::new(
                wqueue::task::TaskId(16 + i),
                Category::Analysis,
                0,
                7,
                SimTime::from_secs(i * 5000),
            );
            b.times_mut().env_setup = SimDuration::from_mins(30);
            adv.record(&b.succeed(SimTime::from_secs(i * 5000 + 3600), 1));
        }
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(
            advice.contains(&Advice::AddSquidsOrShareCaches),
            "30-min setups must flag the squid tier even amid early aborts: {advice:?}"
        );
    }

    #[test]
    fn advisor_empty_is_silent() {
        assert!(Advisor::new()
            .diagnose(&AdvisorConfig::default())
            .is_empty());
    }

    fn watchdog_report(seg: Segment, start_s: u64, end_s: u64, attempt: u32) -> SegmentReport {
        ReportBuilder::new(
            wqueue::task::TaskId(9),
            Category::Analysis,
            attempt,
            7,
            SimTime::from_secs(start_s),
        )
        .abort_by_watchdog(seg, SimTime::from_secs(end_s))
    }

    #[test]
    fn accounting_tracks_failure_policy_counters() {
        let mut acc = Accounting::default();
        acc.record(&watchdog_report(Segment::StageIn, 0, 600, 0));
        acc.record(&watchdog_report(Segment::StageIn, 700, 1300, 1));
        acc.record(&report(60, 0, false, 1400, 5000)); // healthy success
        acc.record_backoff(SimDuration::from_mins(30));
        acc.record_dead_letter();
        assert_eq!(acc.watchdog_aborts, 2);
        assert_eq!(acc.retries, 1, "only the attempt-1 report is a retry");
        assert_eq!(acc.dead_lettered, 1);
        assert!((acc.backoff_hours - 0.5).abs() < 1e-9);
        // The Figure 8 table shape is unchanged by the new counters.
        assert_eq!(acc.table().len(), 5);
        let frac_sum: f64 = acc.table().iter().map(|r| r.2).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_tracks_watchdog_and_dead_letters() {
        let mut tl = Timeline::new(SimDuration::from_secs(60));
        tl.record(&watchdog_report(Segment::StageIn, 0, 30, 0));
        tl.record(&report(0, 0, true, 0, 30)); // plain failure
        tl.record_dead_letter(SimTime::from_secs(45));
        assert_eq!(tl.watchdog_events().len(), 1);
        assert_eq!(tl.watchdog_events()[0].1, Segment::StageIn);
        assert_eq!(tl.failures()[0], 2.0, "watchdog aborts are failures too");
        assert_eq!(tl.dead_letters()[0], 1.0);
    }

    #[test]
    fn advisor_flags_tight_stage_in_deadline() {
        let mut adv = Advisor::new();
        for i in 0..10 {
            adv.record(&report(30, 1, false, i * 4000, i * 4000 + 2000));
        }
        adv.record(&watchdog_report(Segment::StageIn, 0, 600, 0));
        let advice = adv.diagnose(&AdvisorConfig::default());
        assert!(
            advice.contains(&Advice::RaiseSegmentDeadline {
                segment: Segment::StageIn
            }),
            "{advice:?}"
        );
        assert!(
            !advice.contains(&Advice::RaiseSegmentDeadline {
                segment: Segment::EnvInit
            }),
            "quiet segments stay quiet"
        );
    }

    #[test]
    fn segment_histograms_record_all_segments() {
        let mut h = SegmentHistograms::new();
        h.record(&report(60, 30, false, 0, 5400));
        h.record(&report(90, 10, false, 0, 6000));
        let rows = h.summary();
        assert_eq!(rows.len(), 8);
        let cpu = rows.iter().find(|r| r.0 == "cpu").unwrap();
        // Means are bin centers; 60 and 90 min land in 5-min bins.
        assert!((cpu.1 - 75.0).abs() < 5.0, "mean cpu {}", cpu.1);
        let wall = rows.iter().find(|r| r.0 == "wall").unwrap();
        assert!(wall.1 > 90.0, "wall mean {}", wall.1);
    }

    #[test]
    fn segment_histograms_track_overflow() {
        let mut h = SegmentHistograms::new();
        h.record(&report(500, 0, false, 0, 40_000)); // 500 min cpu > 240 range
        let rows = h.summary();
        let cpu = rows.iter().find(|r| r.0 == "cpu").unwrap();
        assert_eq!(cpu.2, 1, "over-range attempt counted as overflow");
    }
}
