//! The Lobster DB.
//!
//! "The main Lobster process creates a local SQLite database (Lobster DB)
//! which persistently records the mapping from tasklets to tasks" (§3).
//! Footnote 1 adds the requirement that matters: "the system state is
//! quickly and automatically recovered if the scheduler node should crash
//! and reboot".
//!
//! Here the DB is an embedded store with an append-only JSON-lines
//! journal: every state transition is one journal record, and
//! [`LobsterDb::recover`] replays the journal to rebuild the exact
//! in-memory state — same durability contract, no external database.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use wqueue::task::TaskId;

/// Lifecycle of a task in the DB.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Created, not yet dispatched.
    Ready,
    /// Dispatched to a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Lost (eviction/failure); its tasklets were returned to the pool.
    Lost,
}

/// A produced output file awaiting (or past) merging.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutputFile {
    /// Producing task.
    pub task: TaskId,
    /// Size in bytes.
    pub bytes: u64,
    /// Name of the merged file this went into, if merged.
    pub merged_into: Option<String>,
}

/// Journal records — one per state transition.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Record {
    Workflow {
        name: String,
        tasklets: u64,
    },
    TaskCreated {
        id: TaskId,
        workflow: String,
        tasklets: Vec<u64>,
    },
    TaskRunning {
        id: TaskId,
    },
    TaskDone {
        id: TaskId,
        output_bytes: u64,
    },
    TaskLost {
        id: TaskId,
    },
    Merged {
        outputs: Vec<TaskId>,
        into: String,
        bytes: u64,
    },
}

#[derive(Clone, Debug, Default)]
struct WorkflowState {
    total_tasklets: u64,
    /// Next never-assigned tasklet index.
    cursor: u64,
    /// Tasklets returned by lost tasks, re-assigned first.
    returned: BTreeSet<u64>,
    /// Tasklets finished.
    done: u64,
}

#[derive(Clone, Debug)]
struct TaskRow {
    workflow: String,
    tasklets: Vec<u64>,
    state: TaskState,
    attempts: u32,
}

/// The bookkeeping store.
pub struct LobsterDb {
    workflows: BTreeMap<String, WorkflowState>,
    tasks: BTreeMap<TaskId, TaskRow>,
    outputs: BTreeMap<TaskId, OutputFile>,
    merged_files: BTreeMap<String, u64>,
    next_task: u64,
    journal: Option<File>,
}

impl LobsterDb {
    /// In-memory DB (no persistence) — used by simulations where the
    /// journal volume would be millions of records.
    pub fn in_memory() -> Self {
        LobsterDb {
            workflows: BTreeMap::new(),
            tasks: BTreeMap::new(),
            outputs: BTreeMap::new(),
            merged_files: BTreeMap::new(),
            next_task: 0,
            journal: None,
        }
    }

    /// DB journaled at `path` (created or appended).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut db = Self::recover(&path)?;
        db.journal = Some(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path.as_ref())?,
        );
        Ok(db)
    }

    /// Rebuild state by replaying the journal at `path` (missing file →
    /// empty DB). The returned DB is *not* attached to the journal; use
    /// [`LobsterDb::open`] for that.
    pub fn recover(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut db = Self::in_memory();
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(db),
            Err(e) => return Err(e),
        };
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: Record = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            db.apply(&rec);
        }
        Ok(db)
    }

    fn log(&mut self, rec: &Record) {
        if let Some(j) = self.journal.as_mut() {
            // simlint::allow(no-panic-in-lib): Record is a closed set of journal shapes
            let mut line = serde_json::to_string(rec).expect("record serialises");
            line.push('\n');
            // A failed WAL append is unrecoverable by design (footnote 1 of the
            // paper requires crash-consistent recovery): crashing here preserves
            // the durable prefix, whereas continuing would fork memory from disk.
            // simlint::allow(no-panic-in-lib): WAL append failure is fatal by design
            j.write_all(line.as_bytes()).expect("journal write");
        }
    }

    fn apply(&mut self, rec: &Record) {
        match rec {
            Record::Workflow { name, tasklets } => {
                self.workflows.insert(
                    name.clone(),
                    WorkflowState {
                        total_tasklets: *tasklets,
                        ..WorkflowState::default()
                    },
                );
            }
            Record::TaskCreated {
                id,
                workflow,
                tasklets,
            } => {
                let wf = self
                    .workflows
                    .get_mut(workflow)
                    .expect("workflow registered");
                for t in tasklets {
                    // Claim from the returned pool or advance the cursor.
                    if !wf.returned.remove(t) {
                        wf.cursor = wf.cursor.max(t + 1);
                    }
                }
                self.tasks.insert(
                    *id,
                    TaskRow {
                        workflow: workflow.clone(),
                        tasklets: tasklets.clone(),
                        state: TaskState::Ready,
                        attempts: 0,
                    },
                );
                self.next_task = self.next_task.max(id.0 + 1);
            }
            Record::TaskRunning { id } => {
                let t = self.tasks.get_mut(id).expect("task exists");
                t.state = TaskState::Running;
                t.attempts += 1;
            }
            Record::TaskDone { id, output_bytes } => {
                let t = self.tasks.get_mut(id).expect("task exists");
                t.state = TaskState::Done;
                let wf = self.workflows.get_mut(&t.workflow).expect("workflow");
                wf.done += t.tasklets.len() as u64;
                self.outputs.insert(
                    *id,
                    OutputFile {
                        task: *id,
                        bytes: *output_bytes,
                        merged_into: None,
                    },
                );
            }
            Record::TaskLost { id } => {
                let t = self.tasks.get_mut(id).expect("task exists");
                t.state = TaskState::Lost;
                let wf = self.workflows.get_mut(&t.workflow).expect("workflow");
                wf.returned.extend(t.tasklets.iter().copied());
            }
            Record::Merged {
                outputs,
                into,
                bytes,
            } => {
                for id in outputs {
                    if let Some(o) = self.outputs.get_mut(id) {
                        o.merged_into = Some(into.clone());
                    }
                }
                self.merged_files.insert(into.clone(), *bytes);
            }
        }
    }

    fn apply_and_log(&mut self, rec: Record) {
        self.apply(&rec);
        self.log(&rec);
    }

    /// Register a workflow of `tasklets` total tasklets.
    pub fn register_workflow(&mut self, name: &str, tasklets: u64) {
        assert!(
            !self.workflows.contains_key(name),
            "workflow {name} already registered"
        );
        self.apply_and_log(Record::Workflow {
            name: name.to_string(),
            tasklets,
        });
    }

    /// Tasklets not yet assigned to any live task.
    pub fn unassigned_tasklets(&self, workflow: &str) -> u64 {
        let wf = &self.workflows[workflow];
        (wf.total_tasklets - wf.cursor) + wf.returned.len() as u64
    }

    /// Tasklets finished.
    pub fn done_tasklets(&self, workflow: &str) -> u64 {
        self.workflows[workflow].done
    }

    /// Total tasklets in the workflow.
    pub fn total_tasklets(&self, workflow: &str) -> u64 {
        self.workflows[workflow].total_tasklets
    }

    /// True once every tasklet of every workflow is done.
    pub fn all_done(&self) -> bool {
        self.workflows.values().all(|w| w.done == w.total_tasklets)
    }

    /// Create a task covering the next `n` unassigned tasklets (returned
    /// tasklets first, then fresh ones). Returns `None` when the workflow
    /// is exhausted; a short final task is created if fewer than `n`
    /// remain.
    pub fn create_task(&mut self, workflow: &str, n: u32) -> Option<TaskId> {
        assert!(n >= 1);
        // Peek the claim without mutating: `apply` is the single place
        // that mutates state, so journal replay is authoritative.
        let wf = self.workflows.get(workflow).expect("workflow registered");
        let mut claim: Vec<u64> = Vec::with_capacity(n as usize);
        let mut returned = wf.returned.iter().copied();
        let mut cursor = wf.cursor;
        while claim.len() < n as usize {
            if let Some(t) = returned.next() {
                claim.push(t);
            } else if cursor < wf.total_tasklets {
                claim.push(cursor);
                cursor += 1;
            } else {
                break;
            }
        }
        if claim.is_empty() {
            return None;
        }
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.apply_and_log(Record::TaskCreated {
            id,
            workflow: workflow.to_string(),
            tasklets: claim,
        });
        Some(id)
    }

    /// Mark a task dispatched.
    pub fn mark_running(&mut self, id: TaskId) {
        assert!(self.tasks.contains_key(&id), "unknown task");
        self.apply_and_log(Record::TaskRunning { id });
    }

    /// Mark a task finished with `output_bytes` of output.
    pub fn mark_done(&mut self, id: TaskId, output_bytes: u64) {
        assert!(self.tasks.contains_key(&id), "unknown task");
        self.apply_and_log(Record::TaskDone { id, output_bytes });
    }

    /// Mark a task lost; its tasklets return to the pool.
    pub fn mark_lost(&mut self, id: TaskId) {
        assert!(self.tasks.contains_key(&id), "unknown task");
        self.apply_and_log(Record::TaskLost { id });
    }

    /// Record a merge of `outputs` into `into` totalling `bytes`.
    pub fn mark_merged(&mut self, outputs: &[TaskId], into: &str, bytes: u64) {
        self.apply_and_log(Record::Merged {
            outputs: outputs.to_vec(),
            into: into.to_string(),
            bytes,
        });
    }

    /// Task state lookup.
    pub fn task_state(&self, id: TaskId) -> Option<TaskState> {
        self.tasks.get(&id).map(|t| t.state)
    }

    /// Dispatch attempts of a task.
    pub fn attempts(&self, id: TaskId) -> u32 {
        self.tasks.get(&id).map_or(0, |t| t.attempts)
    }

    /// Tasklets covered by a task.
    pub fn task_tasklets(&self, id: TaskId) -> Option<&[u64]> {
        self.tasks.get(&id).map(|t| t.tasklets.as_slice())
    }

    /// Outputs not yet merged, as `(task, bytes)` sorted by task id.
    pub fn unmerged_outputs(&self) -> Vec<(TaskId, u64)> {
        self.outputs
            .values()
            .filter(|o| o.merged_into.is_none())
            .map(|o| (o.task, o.bytes))
            .collect()
    }

    /// Merged files as `(name, bytes)`.
    pub fn merged_files(&self) -> Vec<(String, u64)> {
        self.merged_files
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Number of tasks ever created.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_decomposition_bookkeeping() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 10);
        assert_eq!(db.unassigned_tasklets("wf"), 10);
        let t0 = db.create_task("wf", 4).unwrap();
        let t1 = db.create_task("wf", 4).unwrap();
        let t2 = db.create_task("wf", 4).unwrap(); // short final task
        assert!(db.create_task("wf", 4).is_none(), "exhausted");
        assert_eq!(db.task_tasklets(t0).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(db.task_tasklets(t2).unwrap(), &[8, 9]);
        assert_eq!(db.unassigned_tasklets("wf"), 0);
        assert_eq!(db.task_count(), 3);
        let _ = t1;
    }

    #[test]
    fn lost_tasklets_are_reassigned_first() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 6);
        let t0 = db.create_task("wf", 3).unwrap();
        db.mark_running(t0);
        db.mark_lost(t0);
        assert_eq!(db.unassigned_tasklets("wf"), 6);
        let t1 = db.create_task("wf", 4).unwrap();
        // Returned tasklets 0..3 come first, then fresh tasklet 3.
        assert_eq!(db.task_tasklets(t1).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(db.task_state(t0), Some(TaskState::Lost));
    }

    #[test]
    fn done_accounting() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 4);
        let t = db.create_task("wf", 4).unwrap();
        db.mark_running(t);
        assert!(!db.all_done());
        db.mark_done(t, 1000);
        assert_eq!(db.done_tasklets("wf"), 4);
        assert!(db.all_done());
        assert_eq!(db.unmerged_outputs(), vec![(t, 1000)]);
    }

    #[test]
    fn attempts_count_redispatches() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t);
        db.mark_lost(t);
        let t2 = db.create_task("wf", 2).unwrap();
        db.mark_running(t2);
        db.mark_running(t2); // re-dispatch after a worker vanished
        assert_eq!(db.attempts(t2), 2);
    }

    #[test]
    fn merge_bookkeeping() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 4);
        let a = db.create_task("wf", 2).unwrap();
        let b = db.create_task("wf", 2).unwrap();
        db.mark_running(a);
        db.mark_done(a, 100);
        db.mark_running(b);
        db.mark_done(b, 150);
        db.mark_merged(&[a, b], "merged_0.root", 250);
        assert!(db.unmerged_outputs().is_empty());
        assert_eq!(db.merged_files(), vec![("merged_0.root".into(), 250)]);
    }

    #[test]
    fn journal_recovery_rebuilds_state() {
        let dir = std::env::temp_dir().join("lobster-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("journal-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 8);
            let t0 = db.create_task("wf", 3).unwrap();
            let t1 = db.create_task("wf", 3).unwrap();
            db.mark_running(t0);
            db.mark_done(t0, 500);
            db.mark_running(t1);
            db.mark_lost(t1);
        } // crash
        let db = LobsterDb::recover(&path).unwrap();
        assert_eq!(db.total_tasklets("wf"), 8);
        assert_eq!(db.done_tasklets("wf"), 3);
        // t1's 3 tasklets returned + 2 never assigned.
        assert_eq!(db.unassigned_tasklets("wf"), 5);
        assert_eq!(db.task_state(TaskId(0)), Some(TaskState::Done));
        assert_eq!(db.task_state(TaskId(1)), Some(TaskState::Lost));
        assert_eq!(db.unmerged_outputs().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovered_db_continues_numbering() {
        let dir = std::env::temp_dir().join("lobster-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("journal2-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 10);
            db.create_task("wf", 2).unwrap();
        }
        {
            let mut db = LobsterDb::open(&path).unwrap();
            let t = db.create_task("wf", 2).unwrap();
            assert_eq!(t, TaskId(1), "ids continue after recovery");
            assert_eq!(db.task_tasklets(t).unwrap(), &[2, 3]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_missing_file_is_empty() {
        let db = LobsterDb::recover("/nonexistent/path/journal.jsonl").unwrap();
        assert!(db.all_done(), "no workflows → vacuously done");
        assert_eq!(db.task_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_workflow_rejected() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 1);
        db.register_workflow("wf", 1);
    }
}
