//! The Lobster DB.
//!
//! "The main Lobster process creates a local SQLite database (Lobster DB)
//! which persistently records the mapping from tasklets to tasks" (§3).
//! Footnote 1 adds the requirement that matters: "the system state is
//! quickly and automatically recovered if the scheduler node should crash
//! and reboot".
//!
//! Here the DB is an embedded store with an append-only journal: every
//! state transition is one journal record, and [`LobsterDb::recover`]
//! replays the journal to rebuild the exact in-memory state — same
//! durability contract, no external database.
//!
//! # Journal format v2
//!
//! The file starts with a 16-byte header (`LBSTRWAL` magic, `u32` LE
//! format version, `u32` LE flags — zero in v2), followed by frames of
//! `u32` LE payload length, `u32` LE CRC-32 (IEEE) of the payload, then
//! the JSON-encoded [`Record`]. A truncated or corrupt *final* frame is
//! the signature of a crash mid-append and is discarded on recovery;
//! corruption anywhere before the final frame is a hard
//! [`io::ErrorKind::InvalidData`] error. Periodic compaction rewrites the
//! journal as header + one [`Record::Snapshot`] frame (tmp file + fsync +
//! atomic rename), bounding replay cost by the work since the last
//! snapshot. See `docs/recovery.md`.

use crate::monitor::Accounting;
use crate::wrapper::SegmentReport;
use serde::{Deserialize, Serialize};
use simkit::time::SimDuration;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use wqueue::task::{Category, DeadLetter, TaskId};

/// Journal magic bytes.
const MAGIC: &[u8; 8] = b"LBSTRWAL";
/// Journal format version written by this build.
pub const FORMAT_VERSION: u32 = 2;
/// Header: magic + version + flags.
const HEADER_LEN: usize = 16;
/// Frame header: payload length + CRC-32.
const FRAME_HEADER_LEN: usize = 8;
/// Upper bound on a single record; larger lengths are corruption.
const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// Merge tasks are numbered from this base so they never collide with
/// analysis task ids (which count up from zero).
pub const MERGE_ID_BASE: u64 = 1_000_000_000;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB8_8320`) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // Bytes 12..16 are flags, all zero in v2.
    h
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&crc32(payload).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

fn read_u32_le(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Lifecycle of a task in the DB.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Created, not yet dispatched.
    Ready,
    /// Dispatched to a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Lost (eviction/failure); its tasklets were returned to the pool.
    Lost,
    /// Dead-lettered: retry budget exhausted, withdrawn from the run.
    Withdrawn,
}

/// A produced output file awaiting (or past) merging.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutputFile {
    /// Producing task.
    pub task: TaskId,
    /// Size in bytes.
    pub bytes: u64,
    /// Name of the merged file this went into, if merged.
    pub merged_into: Option<String>,
    /// The merge that would have consumed this output was dead-lettered;
    /// the file is withdrawn from further merge planning.
    pub withdrawn: bool,
}

/// The `(producer, bytes)` inputs of one planned merge group.
pub type MergeInputs = Vec<(TaskId, u64)>;

/// A transition request that was rejected because the task was not in a
/// legal source state (or did not exist). The DB state is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectedTransition {
    /// The task the transition targeted.
    pub task: TaskId,
    /// Its state at rejection time (`None` — unknown task).
    pub from: Option<TaskState>,
    /// The attempted operation.
    pub action: &'static str,
}

impl fmt::Display for RejectedTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(s) => write!(f, "{}: illegal {} from {s:?}", self.task, self.action),
            None => write!(f, "{}: {} on unknown task", self.task, self.action),
        }
    }
}

impl std::error::Error for RejectedTransition {}

/// Monotonic run counters, journaled so a resumed run continues them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Analysis tasks that finished successfully.
    pub tasks_completed: u64,
    /// Failed attempts (any category).
    pub tasks_failed: u64,
    /// Attempts lost to worker eviction.
    pub evictions: u64,
    /// Merge files produced.
    pub merges_completed: u64,
    /// Transition requests rejected as illegal (diagnostic; not journaled,
    /// so it counts rejections since open, not since the run began).
    pub rejected_transitions: u64,
}

/// Journal records — one per state transition.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Record {
    Workflow {
        name: String,
        tasklets: u64,
    },
    TaskCreated {
        id: TaskId,
        workflow: String,
        tasklets: Vec<u64>,
    },
    TaskRunning {
        id: TaskId,
    },
    TaskDone {
        id: TaskId,
        output_bytes: u64,
    },
    TaskLost {
        id: TaskId,
    },
    MergeCreated {
        id: TaskId,
        inputs: MergeInputs,
    },
    Merged {
        task: Option<TaskId>,
        outputs: Vec<TaskId>,
        into: String,
        bytes: u64,
    },
    Attempt {
        report: Box<SegmentReport>,
    },
    Backoff {
        wait: SimDuration,
    },
    DeadLettered {
        letter: Box<DeadLetter>,
    },
    Snapshot {
        state: Box<SnapshotState>,
    },
}

/// Serialisable image of one workflow (snapshot form).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct WorkflowSnap {
    name: String,
    total: u64,
    cursor: u64,
    returned: Vec<u64>,
    done: u64,
    dead: u64,
}

/// Serialisable image of one task row (snapshot form).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TaskSnap {
    id: TaskId,
    workflow: String,
    tasklets: Vec<u64>,
    state: TaskState,
    attempts: u32,
}

/// Full-state image written by compaction; replay restarts from here.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SnapshotState {
    workflows: Vec<WorkflowSnap>,
    tasks: Vec<TaskSnap>,
    outputs: Vec<OutputFile>,
    done_order: Vec<TaskId>,
    merged_files: Vec<(String, u64)>,
    merge_groups: Vec<(TaskId, MergeInputs)>,
    next_task: u64,
    next_merge: u64,
    dead_letters: Vec<DeadLetter>,
    accounting: Accounting,
    counters: Counters,
}

#[derive(Clone, Debug, Default)]
struct WorkflowState {
    total_tasklets: u64,
    /// Next never-assigned tasklet index.
    cursor: u64,
    /// Tasklets returned by lost tasks, re-assigned first.
    returned: BTreeSet<u64>,
    /// Tasklets finished.
    done: u64,
    /// Tasklets withdrawn with dead-lettered tasks.
    dead: u64,
}

/// One registered workflow: interned name plus decomposition state.
/// Stored in registration order; task rows refer to workflows by index.
#[derive(Clone, Debug)]
struct WorkflowEntry {
    name: String,
    state: WorkflowState,
}

#[derive(Clone, Debug)]
struct TaskRow {
    /// Index into `workflows` (names are interned — a row carries no
    /// `String`).
    wf: u32,
    tasklets: Vec<u64>,
    state: TaskState,
    attempts: u32,
}

/// The bookkeeping store.
#[derive(Debug)]
pub struct LobsterDb {
    workflows: Vec<WorkflowEntry>,
    /// Task rows indexed by analysis task id. Analysis ids are handed out
    /// densely from zero, so the table is a `Vec`, not a tree: the
    /// per-completion hot path does O(1) state transitions no matter how
    /// many tasks the campaign has retired. Merge ids
    /// (>= [`MERGE_ID_BASE`]) fall outside the dense range and resolve to
    /// `None`, like a missing map key.
    tasks: Vec<Option<TaskRow>>,
    /// `Some` rows in `tasks`.
    n_tasks: usize,
    /// Output files indexed by producing task id (same dense id space).
    outputs: Vec<Option<OutputFile>>,
    /// Done tasks in finish order (drives merge planning on resume).
    done_order: Vec<TaskId>,
    merged_files: BTreeMap<String, u64>,
    /// Planned merges not yet completed, keyed by merge task id.
    merge_groups: BTreeMap<TaskId, MergeInputs>,
    /// Outputs claimed by an open merge group.
    grouped: BTreeSet<TaskId>,
    dead_letters: Vec<DeadLetter>,
    accounting: Accounting,
    counters: Counters,
    next_task: u64,
    next_merge: u64,
    journal: Option<File>,
    journal_path: Option<PathBuf>,
    /// Compact after this many appended records (`None` — never).
    snapshot_every: Option<u64>,
    records_since_snapshot: u64,
    /// Attempt reports replayed since the last snapshot, for the driver
    /// to rebuild monitor state on resume.
    replayed_attempts: Vec<SegmentReport>,
}

impl LobsterDb {
    /// In-memory DB (no persistence) — used by simulations where the
    /// journal volume would be millions of records.
    pub fn in_memory() -> Self {
        LobsterDb {
            workflows: Vec::new(),
            tasks: Vec::new(),
            n_tasks: 0,
            outputs: Vec::new(),
            done_order: Vec::new(),
            merged_files: BTreeMap::new(),
            merge_groups: BTreeMap::new(),
            grouped: BTreeSet::new(),
            dead_letters: Vec::new(),
            accounting: Accounting::default(),
            counters: Counters::default(),
            next_task: 0,
            next_merge: 0,
            journal: None,
            journal_path: None,
            snapshot_every: None,
            records_since_snapshot: 0,
            replayed_attempts: Vec::new(),
        }
    }

    /// DB journaled at `path` (created or appended), no auto-compaction.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_policy(path, None)
    }

    /// DB journaled at `path`; with `snapshot_every = Some(n)` the journal
    /// is compacted into a snapshot frame after every `n` appended
    /// records. Any torn tail left by a crash is truncated so the next
    /// append starts at a frame boundary.
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        snapshot_every: Option<u64>,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        let (mut db, valid_len, header_present) = Self::recover_internal(path)?;
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if header_present {
            file.set_len(valid_len)?;
        } else {
            file.set_len(0)?;
            file.write_all(&header_bytes())?;
        }
        db.journal = Some(file);
        db.journal_path = Some(path.to_path_buf());
        db.snapshot_every = snapshot_every;
        Ok(db)
    }

    /// Rebuild state by replaying the journal at `path` (missing file →
    /// empty DB). The returned DB is *not* attached to the journal; use
    /// [`LobsterDb::open`] for that.
    pub fn recover(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::recover_internal(path.as_ref())?.0)
    }

    /// Replay the journal. Returns the DB, the byte offset of the end of
    /// the last intact frame (the torn tail beyond it should be
    /// truncated before appending), and whether an intact header was
    /// found.
    fn recover_internal(path: &Path) -> io::Result<(Self, u64, bool)> {
        let mut db = Self::in_memory();
        let buf = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((db, 0, false)),
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok((db, 0, false));
        }
        let canonical = header_bytes();
        if buf.len() < HEADER_LEN {
            // A crash can tear even the initial header write; anything
            // else this short is not a Lobster journal.
            return if canonical.starts_with(&buf) {
                Ok((db, 0, false))
            } else {
                Err(invalid("unrecognised journal header".to_string()))
            };
        }
        if buf[..HEADER_LEN] != canonical {
            return Err(invalid(format!(
                "bad journal header (want magic {MAGIC:?} version {FORMAT_VERSION})"
            )));
        }
        let mut pos = HEADER_LEN;
        while pos < buf.len() {
            if buf.len() - pos < FRAME_HEADER_LEN {
                break; // torn frame header at EOF: interrupted append
            }
            let len = read_u32_le(&buf, pos) as usize;
            let crc = read_u32_le(&buf, pos + 4);
            let frame_end = pos + FRAME_HEADER_LEN + len;
            if len > MAX_RECORD_LEN as usize {
                if frame_end >= buf.len() {
                    break; // garbage length from a torn final frame
                }
                return Err(invalid(format!("oversized journal record ({len} bytes)")));
            }
            if frame_end > buf.len() {
                break; // frame extends past EOF: interrupted append
            }
            let payload = &buf[pos + FRAME_HEADER_LEN..frame_end];
            let is_final = frame_end == buf.len();
            if crc32(payload) != crc {
                if is_final {
                    break; // corrupt final frame: interrupted append
                }
                return Err(invalid(format!("journal CRC mismatch at offset {pos}")));
            }
            let parsed = std::str::from_utf8(payload)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str::<Record>(s).map_err(|e| e.to_string()));
            let rec = match parsed {
                Ok(r) => r,
                Err(e) => {
                    if is_final {
                        break; // undecodable final frame: interrupted append
                    }
                    return Err(invalid(format!(
                        "undecodable journal record at offset {pos}: {e}"
                    )));
                }
            };
            if matches!(rec, Record::Snapshot { .. }) {
                db.records_since_snapshot = 0;
                db.replayed_attempts.clear();
            } else {
                db.records_since_snapshot += 1;
            }
            if let Record::Attempt { report } = &rec {
                db.replayed_attempts.push((**report).clone());
            }
            db.apply(rec);
            pos = frame_end;
        }
        Ok((db, pos as u64, true))
    }

    /// Rewrite the journal as header + one snapshot frame of the current
    /// state (tmp file, fsync, atomic rename). Bounds future replay cost.
    pub fn compact(&mut self) -> io::Result<()> {
        let path = match self.journal_path.clone() {
            Some(p) => p,
            None => return Ok(()), // in-memory: nothing to compact
        };
        let rec = Record::Snapshot {
            state: Box::new(self.snapshot_state()),
        };
        // simlint::allow(no-panic-in-lib): Record is a closed set of journal shapes
        let payload = serde_json::to_string(&rec).expect("record serialises");
        let mut buf = Vec::with_capacity(HEADER_LEN + FRAME_HEADER_LEN + payload.len());
        buf.extend_from_slice(&header_bytes());
        buf.extend_from_slice(&encode_frame(payload.as_bytes()));
        let tmp = path.with_extension("waltmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.journal = Some(OpenOptions::new().append(true).open(&path)?);
        self.records_since_snapshot = 0;
        Ok(())
    }

    fn log(&mut self, rec: &Record) {
        if let Some(j) = self.journal.as_mut() {
            // simlint::allow(no-panic-in-lib): Record is a closed set of journal shapes
            let payload = serde_json::to_string(rec).expect("record serialises");
            // A failed WAL append is unrecoverable by design (footnote 1 of the
            // paper requires crash-consistent recovery): crashing here preserves
            // the durable prefix, whereas continuing would fork memory from disk.
            j.write_all(&encode_frame(payload.as_bytes()))
                // simlint::allow(no-panic-in-lib): WAL append failure is fatal by design
                .expect("journal write");
            self.records_since_snapshot += 1;
        }
    }

    fn apply(&mut self, rec: Record) {
        match rec {
            Record::Workflow { name, tasklets } => {
                let state = WorkflowState {
                    total_tasklets: tasklets,
                    ..WorkflowState::default()
                };
                match self.wf_index(&name) {
                    Some(ix) => self.workflows[ix].state = state,
                    None => self.workflows.push(WorkflowEntry { name, state }),
                }
            }
            Record::TaskCreated {
                id,
                workflow,
                tasklets,
            } => {
                let wf_ix = self.wf_index(&workflow).expect("workflow registered");
                let wf = &mut self.workflows[wf_ix].state;
                for t in &tasklets {
                    // Claim from the returned pool or advance the cursor.
                    if !wf.returned.remove(t) {
                        wf.cursor = wf.cursor.max(t + 1);
                    }
                }
                self.insert_task_row(
                    id,
                    TaskRow {
                        wf: wf_ix as u32,
                        tasklets,
                        state: TaskState::Ready,
                        attempts: 0,
                    },
                );
                self.next_task = self.next_task.max(id.0 + 1);
            }
            Record::TaskRunning { id } => {
                let t = self.task_row_mut(id).expect("task exists");
                t.state = TaskState::Running;
                t.attempts += 1;
            }
            Record::TaskDone { id, output_bytes } => {
                let t = self.task_row_mut(id).expect("task exists");
                t.state = TaskState::Done;
                let wf_ix = t.wf as usize;
                let tasklets = t.tasklets.len() as u64;
                self.workflows[wf_ix].state.done += tasklets;
                self.insert_output_row(
                    id,
                    OutputFile {
                        task: id,
                        bytes: output_bytes,
                        merged_into: None,
                        withdrawn: false,
                    },
                );
                self.done_order.push(id);
                self.counters.tasks_completed += 1;
            }
            Record::TaskLost { id } => {
                let t = self.task_row_mut(id).expect("task exists");
                t.state = TaskState::Lost;
                let wf_ix = t.wf as usize;
                let returned: Vec<u64> = t.tasklets.clone();
                self.workflows[wf_ix].state.returned.extend(returned);
            }
            Record::MergeCreated { id, inputs } => {
                for (src, _) in &inputs {
                    self.grouped.insert(*src);
                }
                self.merge_groups.insert(id, inputs);
                self.next_merge = self.next_merge.max(id.0 - MERGE_ID_BASE + 1);
            }
            Record::Merged {
                task,
                outputs,
                into,
                bytes,
            } => {
                for id in &outputs {
                    if let Some(o) = self.output_row_mut(*id) {
                        o.merged_into = Some(into.clone());
                    }
                    self.grouped.remove(id);
                }
                self.merged_files.insert(into, bytes);
                self.counters.merges_completed += 1;
                if let Some(t) = task {
                    self.merge_groups.remove(&t);
                }
            }
            Record::Attempt { report } => {
                self.apply_attempt(&report);
            }
            Record::Backoff { wait } => {
                self.accounting.record_backoff(wait);
            }
            Record::DeadLettered { letter } => {
                let l = *letter;
                if l.category == Category::Merge {
                    // Withdraw the group: its inputs leave merge planning
                    // for good (they are neither merged nor re-groupable).
                    if let Some(inputs) = self.merge_groups.remove(&l.task) {
                        for (src, _) in inputs {
                            self.grouped.remove(&src);
                            if let Some(o) = self.output_row_mut(src) {
                                o.withdrawn = true;
                            }
                        }
                    }
                } else {
                    let wf_ix = match self.task_row_mut(l.task) {
                        Some(t) => {
                            t.state = TaskState::Withdrawn;
                            Some(t.wf as usize)
                        }
                        None => None,
                    };
                    if let Some(ix) = wf_ix {
                        self.workflows[ix].state.dead += l.units;
                    }
                }
                self.dead_letters.push(l);
                self.accounting.record_dead_letter();
            }
            Record::Snapshot { state } => {
                self.install(*state);
            }
        }
    }

    fn apply_attempt(&mut self, report: &SegmentReport) {
        self.accounting.record(report);
        if !report.is_success() {
            self.counters.tasks_failed += 1;
        }
        if report.evicted {
            self.counters.evictions += 1;
        }
    }

    fn apply_and_log(&mut self, rec: Record) {
        self.log(&rec);
        // The log-then-apply wrapper is the one sanctioned entry into
        // the replay path: the record is durable before the in-memory
        // state changes.
        // simlint::allow(journal-coverage): sanctioned log-then-apply entry point
        self.apply(rec);
        if let Some(n) = self.snapshot_every {
            if self.journal.is_some() && self.records_since_snapshot >= n {
                // Compaction failure would strand an unbounded journal
                // while memory marches on; same fatal-by-design stance as
                // a failed append.
                // simlint::allow(no-panic-in-lib): WAL compaction failure is fatal by design
                self.compact().expect("journal compaction");
            }
        }
    }

    fn snapshot_state(&self) -> SnapshotState {
        SnapshotState {
            workflows: self
                .workflows
                .iter()
                .map(|w| WorkflowSnap {
                    name: w.name.clone(),
                    total: w.state.total_tasklets,
                    cursor: w.state.cursor,
                    returned: w.state.returned.iter().copied().collect(),
                    done: w.state.done,
                    dead: w.state.dead,
                })
                .collect(),
            tasks: self
                .tasks
                .iter()
                .enumerate()
                .filter_map(|(ix, row)| {
                    row.as_ref().map(|t| TaskSnap {
                        id: TaskId(ix as u64),
                        workflow: self.workflows[t.wf as usize].name.clone(),
                        tasklets: t.tasklets.clone(),
                        state: t.state,
                        attempts: t.attempts,
                    })
                })
                .collect(),
            outputs: self.outputs.iter().flatten().cloned().collect(),
            done_order: self.done_order.clone(),
            merged_files: self
                .merged_files
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            merge_groups: self
                .merge_groups
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            next_task: self.next_task,
            next_merge: self.next_merge,
            dead_letters: self.dead_letters.clone(),
            accounting: self.accounting.clone(),
            counters: self.counters,
        }
    }

    fn install(&mut self, s: SnapshotState) {
        self.workflows = s
            .workflows
            .into_iter()
            .map(|w| WorkflowEntry {
                name: w.name,
                state: WorkflowState {
                    total_tasklets: w.total,
                    cursor: w.cursor,
                    returned: w.returned.into_iter().collect(),
                    done: w.done,
                    dead: w.dead,
                },
            })
            .collect();
        self.tasks.clear();
        self.n_tasks = 0;
        for t in s.tasks {
            let wf = self
                .wf_index(&t.workflow)
                .expect("snapshot task names a snapshot workflow") as u32;
            self.insert_task_row(
                t.id,
                TaskRow {
                    wf,
                    tasklets: t.tasklets,
                    state: t.state,
                    attempts: t.attempts,
                },
            );
        }
        self.outputs.clear();
        for o in s.outputs {
            self.insert_output_row(o.task, o);
        }
        self.done_order = s.done_order;
        self.merged_files = s.merged_files.into_iter().collect();
        self.grouped = s
            .merge_groups
            .iter()
            .flat_map(|(_, inputs)| inputs.iter().map(|(src, _)| *src))
            .collect();
        self.merge_groups = s.merge_groups.into_iter().collect();
        self.next_task = s.next_task;
        self.next_merge = s.next_merge;
        self.dead_letters = s.dead_letters;
        self.accounting = s.accounting;
        self.counters = s.counters;
    }

    fn wf_index(&self, name: &str) -> Option<usize> {
        // Linear scan: a run has a handful of workflows, and the hot path
        // never resolves by name (rows carry the index).
        self.workflows.iter().position(|w| w.name == name)
    }

    /// Mirrors the old map indexing: an unknown workflow is a caller bug.
    fn wf_state(&self, name: &str) -> &WorkflowState {
        &self.workflows[self.wf_index(name).expect("workflow registered")].state
    }

    fn task_row(&self, id: TaskId) -> Option<&TaskRow> {
        self.tasks.get(usize::try_from(id.0).ok()?)?.as_ref()
    }

    fn task_row_mut(&mut self, id: TaskId) -> Option<&mut TaskRow> {
        self.tasks.get_mut(usize::try_from(id.0).ok()?)?.as_mut()
    }

    fn insert_task_row(&mut self, id: TaskId, row: TaskRow) {
        debug_assert!(id.0 < MERGE_ID_BASE, "merge tasks have no task row");
        let ix = id.0 as usize;
        if self.tasks.len() <= ix {
            self.tasks.resize(ix + 1, None);
        }
        if self.tasks[ix].replace(row).is_none() {
            self.n_tasks += 1;
        }
    }

    fn output_row(&self, id: TaskId) -> Option<&OutputFile> {
        self.outputs.get(usize::try_from(id.0).ok()?)?.as_ref()
    }

    fn output_row_mut(&mut self, id: TaskId) -> Option<&mut OutputFile> {
        self.outputs.get_mut(usize::try_from(id.0).ok()?)?.as_mut()
    }

    fn insert_output_row(&mut self, id: TaskId, out: OutputFile) {
        let ix = id.0 as usize;
        if self.outputs.len() <= ix {
            self.outputs.resize(ix + 1, None);
        }
        self.outputs[ix] = Some(out);
    }

    fn reject(&mut self, task: TaskId, action: &'static str) -> RejectedTransition {
        // rejected_transitions is a diagnostic-only counter, deliberately
        // unjournaled (see the Counters docs): replay equality is defined
        // over task state, not over how many invalid transitions were
        // attempted against it.
        // simlint::allow(journal-coverage): diagnostic-only counter, deliberately unjournaled
        self.counters.rejected_transitions += 1;
        RejectedTransition {
            task,
            from: self.task_row(task).map(|t| t.state),
            action,
        }
    }

    /// Register a workflow of `tasklets` total tasklets.
    pub fn register_workflow(&mut self, name: &str, tasklets: u64) {
        assert!(
            self.wf_index(name).is_none(),
            "workflow {name} already registered"
        );
        self.apply_and_log(Record::Workflow {
            name: name.to_string(),
            tasklets,
        });
    }

    /// Tasklets not yet assigned to any live task.
    pub fn unassigned_tasklets(&self, workflow: &str) -> u64 {
        let wf = self.wf_state(workflow);
        (wf.total_tasklets - wf.cursor) + wf.returned.len() as u64
    }

    /// Tasklets finished.
    pub fn done_tasklets(&self, workflow: &str) -> u64 {
        self.wf_state(workflow).done
    }

    /// Tasklets withdrawn with dead-lettered tasks.
    pub fn dead_tasklets(&self, workflow: &str) -> u64 {
        self.wf_state(workflow).dead
    }

    /// Total tasklets in the workflow.
    pub fn total_tasklets(&self, workflow: &str) -> u64 {
        self.wf_state(workflow).total_tasklets
    }

    /// Tasklets finished, summed over every registered workflow (an
    /// index walk, no name lookups — safe for per-completion call sites).
    pub fn total_done_tasklets(&self) -> u64 {
        self.workflows.iter().map(|w| w.state.done).sum()
    }

    /// Dead-lettered tasklets, summed over every registered workflow.
    pub fn total_dead_tasklets(&self) -> u64 {
        self.workflows.iter().map(|w| w.state.dead).sum()
    }

    /// True if the workflow is registered.
    pub fn has_workflow(&self, workflow: &str) -> bool {
        self.wf_index(workflow).is_some()
    }

    /// Number of registered workflows.
    pub fn workflow_count(&self) -> usize {
        self.workflows.len()
    }

    /// True once every tasklet of every workflow is done.
    pub fn all_done(&self) -> bool {
        self.workflows
            .iter()
            .all(|w| w.state.done == w.state.total_tasklets)
    }

    /// Create a task covering the next `n` unassigned tasklets (returned
    /// tasklets first, then fresh ones). Returns `None` when the workflow
    /// is exhausted; a short final task is created if fewer than `n`
    /// remain.
    pub fn create_task(&mut self, workflow: &str, n: u32) -> Option<TaskId> {
        assert!(n >= 1);
        // Peek the claim without mutating: `apply` is the single place
        // that mutates state, so journal replay is authoritative.
        let wf = self.wf_state(workflow);
        let mut claim: Vec<u64> = Vec::with_capacity(n as usize);
        let mut returned = wf.returned.iter().copied();
        let mut cursor = wf.cursor;
        while claim.len() < n as usize {
            if let Some(t) = returned.next() {
                claim.push(t);
            } else if cursor < wf.total_tasklets {
                claim.push(cursor);
                cursor += 1;
            } else {
                break;
            }
        }
        if claim.is_empty() {
            return None;
        }
        let id = TaskId(self.next_task);
        self.apply_and_log(Record::TaskCreated {
            id,
            workflow: workflow.to_string(),
            tasklets: claim,
        });
        Some(id)
    }

    /// Plan a merge over `inputs` (each a done, unmerged, unclaimed
    /// output). Journals the group so a resumed run re-issues exactly
    /// this merge; returns the merge task id (numbered from
    /// [`MERGE_ID_BASE`]).
    pub fn create_merge_group(
        &mut self,
        inputs: &[(TaskId, u64)],
    ) -> Result<TaskId, RejectedTransition> {
        for (src, _) in inputs {
            let ok = self
                .output_row(*src)
                .is_some_and(|o| o.merged_into.is_none() && !o.withdrawn)
                && !self.grouped.contains(src);
            if !ok {
                return Err(self.reject(*src, "create_merge_group"));
            }
        }
        let id = TaskId(MERGE_ID_BASE + self.next_merge);
        self.apply_and_log(Record::MergeCreated {
            id,
            inputs: inputs.to_vec(),
        });
        Ok(id)
    }

    /// Mark a task dispatched. Legal from `Ready` or `Running` (a
    /// re-dispatch after a vanished worker).
    pub fn mark_running(&mut self, id: TaskId) -> Result<(), RejectedTransition> {
        match self.task_row(id).map(|t| t.state) {
            Some(TaskState::Ready | TaskState::Running) => {
                self.apply_and_log(Record::TaskRunning { id });
                Ok(())
            }
            _ => Err(self.reject(id, "mark_running")),
        }
    }

    /// Mark a task finished with `output_bytes` of output. Legal from
    /// `Running` only.
    pub fn mark_done(&mut self, id: TaskId, output_bytes: u64) -> Result<(), RejectedTransition> {
        match self.task_row(id).map(|t| t.state) {
            Some(TaskState::Running) => {
                self.apply_and_log(Record::TaskDone { id, output_bytes });
                Ok(())
            }
            _ => Err(self.reject(id, "mark_done")),
        }
    }

    /// Mark a task lost; its tasklets return to the pool. Legal from
    /// `Ready` or `Running`.
    pub fn mark_lost(&mut self, id: TaskId) -> Result<(), RejectedTransition> {
        match self.task_row(id).map(|t| t.state) {
            Some(TaskState::Ready | TaskState::Running) => {
                self.apply_and_log(Record::TaskLost { id });
                Ok(())
            }
            _ => Err(self.reject(id, "mark_lost")),
        }
    }

    /// Record a merge of `outputs` into `into` totalling `bytes`. `task`
    /// is the planned merge group being completed (`None` for merges
    /// planned outside the DB, e.g. the Hadoop-style global plan). Every
    /// output must be done, unmerged and not withdrawn; the file name
    /// must be unused.
    pub fn mark_merged(
        &mut self,
        task: Option<TaskId>,
        outputs: &[TaskId],
        into: &str,
        bytes: u64,
    ) -> Result<(), RejectedTransition> {
        if let Some(t) = task {
            if !self.merge_groups.contains_key(&t) {
                return Err(self.reject(t, "mark_merged (unknown merge group)"));
            }
        }
        if self.merged_files.contains_key(into) {
            let id = task
                .or_else(|| outputs.first().copied())
                .unwrap_or(TaskId(0));
            return Err(self.reject(id, "mark_merged (duplicate merged file)"));
        }
        for id in outputs {
            let ok = self
                .output_row(*id)
                .is_some_and(|o| o.merged_into.is_none() && !o.withdrawn);
            if !ok {
                return Err(self.reject(*id, "mark_merged"));
            }
        }
        self.apply_and_log(Record::Merged {
            task,
            outputs: outputs.to_vec(),
            into: into.to_string(),
            bytes,
        });
        Ok(())
    }

    /// Journal one attempt report into the durable accounting.
    pub fn record_attempt(&mut self, report: &SegmentReport) {
        if self.journal.is_some() {
            self.apply_and_log(Record::Attempt {
                report: Box::new(report.clone()),
            });
        } else {
            // In-memory mode: apply directly, skipping the per-attempt
            // `Box` + clone a journal record would cost on the hot path.
            // simlint::allow(journal-coverage): in-memory fast path gated on journal absence
            self.apply_attempt(report);
        }
    }

    /// Journal time spent in a backoff wait.
    pub fn record_backoff(&mut self, wait: SimDuration) {
        self.apply_and_log(Record::Backoff { wait });
    }

    /// Journal a task landing in the dead-letter ledger. For analysis
    /// tasks the task is withdrawn and its tasklets counted dead; for
    /// merges the group is dissolved and its inputs withdrawn.
    pub fn record_dead_letter(&mut self, letter: DeadLetter) {
        self.apply_and_log(Record::DeadLettered {
            letter: Box::new(letter),
        });
    }

    /// Task state lookup.
    pub fn task_state(&self, id: TaskId) -> Option<TaskState> {
        self.task_row(id).map(|t| t.state)
    }

    /// Dispatch attempts of a task.
    pub fn attempts(&self, id: TaskId) -> u32 {
        self.task_row(id).map_or(0, |t| t.attempts)
    }

    /// Tasklets covered by a task.
    pub fn task_tasklets(&self, id: TaskId) -> Option<&[u64]> {
        self.task_row(id).map(|t| t.tasklets.as_slice())
    }

    /// Workflow a task belongs to.
    pub fn task_workflow(&self, id: TaskId) -> Option<&str> {
        self.task_row(id)
            .map(|t| self.workflows[t.wf as usize].name.as_str())
    }

    /// Outputs not yet merged (nor withdrawn), as `(task, bytes)` sorted
    /// by task id.
    pub fn unmerged_outputs(&self) -> Vec<(TaskId, u64)> {
        self.outputs
            .iter()
            .flatten()
            .filter(|o| o.merged_into.is_none() && !o.withdrawn)
            .map(|o| (o.task, o.bytes))
            .collect()
    }

    /// Unmerged, unwithdrawn outputs not claimed by any open merge group,
    /// in task *finish* order — the shape of the driver's pending-merge
    /// buffer at crash time.
    pub fn done_order_unmerged(&self) -> Vec<(TaskId, u64)> {
        self.done_order
            .iter()
            .filter_map(|id| {
                self.output_row(*id)
                    .filter(|o| {
                        o.merged_into.is_none() && !o.withdrawn && !self.grouped.contains(id)
                    })
                    .map(|o| (o.task, o.bytes))
            })
            .collect()
    }

    /// Open (planned, incomplete) merge groups as `(merge id, inputs)`.
    pub fn open_merge_groups(&self) -> Vec<(TaskId, MergeInputs)> {
        self.merge_groups
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Tasks currently in `Running` state (in-flight at crash time).
    pub fn running_tasks(&self) -> Vec<TaskId> {
        self.tasks_in_state(TaskState::Running)
    }

    /// Tasks still in `Ready` state: created (their tasklets are claimed
    /// off the workflow cursor) but never dispatched. A recovered master
    /// must re-dispatch these — nothing else will re-cover the tasklets.
    pub fn ready_tasks(&self) -> Vec<TaskId> {
        self.tasks_in_state(TaskState::Ready)
    }

    /// Live task ids in `state`, ascending.
    fn tasks_in_state(&self, state: TaskState) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, row)| row.as_ref().is_some_and(|t| t.state == state))
            .map(|(ix, _)| TaskId(ix as u64))
            .collect()
    }

    /// Merged files as `(name, bytes)`.
    pub fn merged_files(&self) -> Vec<(String, u64)> {
        self.merged_files
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Number of merged files produced so far.
    pub fn merged_file_count(&self) -> usize {
        self.merged_files.len()
    }

    /// Number of tasks ever created.
    pub fn task_count(&self) -> usize {
        self.n_tasks
    }

    /// The dead-letter ledger, in dead-letter order.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead_letters
    }

    /// Durable run accounting (rebuilt on recovery).
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Durable run counters (rebuilt on recovery).
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Records appended since the last snapshot (or since the journal
    /// began, if never compacted).
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Attempt reports replayed from the journal tail during recovery
    /// (empties the buffer). The driver uses these to rebuild monitor
    /// timelines on resume.
    pub fn take_replayed_attempts(&mut self) -> Vec<SegmentReport> {
        std::mem::take(&mut self.replayed_attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::Segment;
    use simkit::time::SimTime;
    use wqueue::task::{FailureCode, TaskTimes};

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lobster-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{tag}-{}.wal", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    fn report(task: u64, ok: bool) -> SegmentReport {
        SegmentReport {
            task: TaskId(task),
            category: Category::Analysis,
            attempt: 0,
            worker: 1,
            times: TaskTimes {
                cpu: SimDuration::from_mins(10),
                ..TaskTimes::default()
            },
            failed_segment: if ok { None } else { Some(Segment::StageIn) },
            watchdog: false,
            evicted: false,
            dispatched_at: SimTime::ZERO,
            finished_at: SimTime::from_secs(600),
            output_bytes: if ok { 1000 } else { 0 },
        }
    }

    fn letter(task: u64, category: Category, units: u64) -> DeadLetter {
        DeadLetter {
            task: TaskId(task),
            category,
            code: FailureCode::StageIn,
            attempts: 3,
            units,
            at: SimTime::from_secs(900),
        }
    }

    #[test]
    fn workflow_decomposition_bookkeeping() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 10);
        assert_eq!(db.unassigned_tasklets("wf"), 10);
        let t0 = db.create_task("wf", 4).unwrap();
        let t1 = db.create_task("wf", 4).unwrap();
        let t2 = db.create_task("wf", 4).unwrap(); // short final task
        assert!(db.create_task("wf", 4).is_none(), "exhausted");
        assert_eq!(db.task_tasklets(t0).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(db.task_tasklets(t2).unwrap(), &[8, 9]);
        assert_eq!(db.unassigned_tasklets("wf"), 0);
        assert_eq!(db.task_count(), 3);
        let _ = t1;
    }

    #[test]
    fn lost_tasklets_are_reassigned_first() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 6);
        let t0 = db.create_task("wf", 3).unwrap();
        db.mark_running(t0).unwrap();
        db.mark_lost(t0).unwrap();
        assert_eq!(db.unassigned_tasklets("wf"), 6);
        let t1 = db.create_task("wf", 4).unwrap();
        // Returned tasklets 0..3 come first, then fresh tasklet 3.
        assert_eq!(db.task_tasklets(t1).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(db.task_state(t0), Some(TaskState::Lost));
    }

    #[test]
    fn done_accounting() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 4);
        let t = db.create_task("wf", 4).unwrap();
        db.mark_running(t).unwrap();
        assert!(!db.all_done());
        db.mark_done(t, 1000).unwrap();
        assert_eq!(db.done_tasklets("wf"), 4);
        assert!(db.all_done());
        assert_eq!(db.unmerged_outputs(), vec![(t, 1000)]);
        assert_eq!(db.counters().tasks_completed, 1);
    }

    #[test]
    fn attempts_count_redispatches() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.mark_lost(t).unwrap();
        let t2 = db.create_task("wf", 2).unwrap();
        db.mark_running(t2).unwrap();
        db.mark_running(t2).unwrap(); // re-dispatch after a worker vanished
        assert_eq!(db.attempts(t2), 2);
    }

    #[test]
    fn merge_bookkeeping() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 4);
        let a = db.create_task("wf", 2).unwrap();
        let b = db.create_task("wf", 2).unwrap();
        db.mark_running(a).unwrap();
        db.mark_done(a, 100).unwrap();
        db.mark_running(b).unwrap();
        db.mark_done(b, 150).unwrap();
        let g = db.create_merge_group(&[(a, 100), (b, 150)]).unwrap();
        assert_eq!(g, TaskId(MERGE_ID_BASE));
        assert!(
            db.done_order_unmerged().is_empty(),
            "grouped outputs leave planning"
        );
        db.mark_merged(Some(g), &[a, b], "merged_0.root", 250)
            .unwrap();
        assert!(db.unmerged_outputs().is_empty());
        assert_eq!(db.merged_files(), vec![("merged_0.root".into(), 250)]);
        assert!(db.open_merge_groups().is_empty());
        assert_eq!(db.counters().merges_completed, 1);
    }

    #[test]
    fn journal_recovery_rebuilds_state() {
        let path = tmp_path("journal");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 8);
            let t0 = db.create_task("wf", 3).unwrap();
            let t1 = db.create_task("wf", 3).unwrap();
            db.mark_running(t0).unwrap();
            db.mark_done(t0, 500).unwrap();
            db.mark_running(t1).unwrap();
            db.mark_lost(t1).unwrap();
        } // crash
        let db = LobsterDb::recover(&path).unwrap();
        assert_eq!(db.total_tasklets("wf"), 8);
        assert_eq!(db.done_tasklets("wf"), 3);
        // t1's 3 tasklets returned + 2 never assigned.
        assert_eq!(db.unassigned_tasklets("wf"), 5);
        assert_eq!(db.task_state(TaskId(0)), Some(TaskState::Done));
        assert_eq!(db.task_state(TaskId(1)), Some(TaskState::Lost));
        assert_eq!(db.unmerged_outputs().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovered_db_continues_numbering() {
        let path = tmp_path("journal2");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 10);
            db.create_task("wf", 2).unwrap();
        }
        {
            let mut db = LobsterDb::open(&path).unwrap();
            let t = db.create_task("wf", 2).unwrap();
            assert_eq!(t, TaskId(1), "ids continue after recovery");
            assert_eq!(db.task_tasklets(t).unwrap(), &[2, 3]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_missing_file_is_empty() {
        let db = LobsterDb::recover("/nonexistent/path/journal.wal").unwrap();
        assert!(db.all_done(), "no workflows → vacuously done");
        assert_eq!(db.task_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_workflow_rejected() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 1);
        db.register_workflow("wf", 1);
    }

    // ---- journal v2 framing & torn-tail tolerance ----------------------

    /// Byte-truncate the final record at *every* offset: recovery must
    /// succeed and yield exactly the state without that record.
    #[test]
    fn torn_tail_tolerated_at_every_offset() {
        let path = tmp_path("torn");
        let len_without_last;
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 6);
            let t0 = db.create_task("wf", 3).unwrap();
            db.mark_running(t0).unwrap();
            db.mark_done(t0, 500).unwrap();
            len_without_last = std::fs::metadata(&path).unwrap().len();
            // The final record, to be torn:
            db.create_task("wf", 3).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        assert!(full.len() as u64 > len_without_last);
        for cut in len_without_last..full.len() as u64 {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let db = LobsterDb::recover(&path)
                .unwrap_or_else(|e| panic!("torn tail at {cut} must be tolerated: {e}"));
            assert_eq!(db.task_count(), 1, "cut at {cut}: last record discarded");
            assert_eq!(db.done_tasklets("wf"), 3);
            // Re-opening truncates the torn tail and continues cleanly.
            let mut db = LobsterDb::open(&path).unwrap();
            let t = db.create_task("wf", 3).unwrap();
            assert_eq!(t, TaskId(1));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_final_record_discarded() {
        let path = tmp_path("corrupt-final");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 4);
            db.create_task("wf", 2).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // CRC now fails on the final frame
        std::fs::write(&path, &bytes).unwrap();
        let db = LobsterDb::recover(&path).unwrap();
        assert_eq!(db.task_count(), 0, "corrupt final record discarded");
        assert_eq!(db.total_tasklets("wf"), 4, "earlier records intact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_hard_error() {
        let path = tmp_path("corrupt-mid");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 4);
            db.create_task("wf", 2).unwrap();
            db.create_task("wf", 2).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the *first* frame (just past its header).
        let at = HEADER_LEN + FRAME_HEADER_LEN + 2;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = LobsterDb::recover(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_rejected_torn_header_tolerated() {
        let path = tmp_path("header");
        // Garbage that is not a prefix of the canonical header: hard error.
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        assert_eq!(
            LobsterDb::recover(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Wrong version in an otherwise intact header: hard error.
        let mut h = header_bytes();
        h[8] = 99;
        std::fs::write(&path, h).unwrap();
        assert_eq!(
            LobsterDb::recover(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // A torn prefix of the canonical header (crash during the very
        // first write): tolerated as an empty journal.
        for cut in 1..HEADER_LEN {
            std::fs::write(&path, &header_bytes()[..cut]).unwrap();
            let db = LobsterDb::recover(&path).unwrap();
            assert_eq!(db.task_count(), 0);
            // open() resets it to a fresh, usable journal.
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_compaction_preserves_state_and_shrinks_journal() {
        let path = tmp_path("compact");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 8);
            let t0 = db.create_task("wf", 4).unwrap();
            db.mark_running(t0).unwrap();
            db.mark_done(t0, 700).unwrap();
            db.record_attempt(&report(t0.0, true));
            db.record_backoff(SimDuration::from_mins(5));
            let before = std::fs::metadata(&path).unwrap().len();
            for _ in 0..50 {
                let t = db.create_task("wf", 1).unwrap();
                db.mark_running(t).unwrap();
                db.mark_lost(t).unwrap();
            }
            db.compact().unwrap();
            assert_eq!(db.records_since_snapshot(), 0);
            let _ = before;
            // Post-compaction appends land after the snapshot frame.
            let t = db.create_task("wf", 2).unwrap();
            db.mark_running(t).unwrap();
        }
        let mut db = LobsterDb::recover(&path).unwrap();
        assert_eq!(db.done_tasklets("wf"), 4);
        assert_eq!(db.counters().tasks_completed, 1);
        assert!(db.accounting().cpu > 0.0);
        assert!(db.accounting().backoff_hours > 0.0);
        assert_eq!(db.task_state(TaskId(51)), Some(TaskState::Running));
        // Attempts before the snapshot are folded into it, not replayed.
        assert!(db.take_replayed_attempts().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_snapshot_policy_compacts() {
        let path = tmp_path("auto-compact");
        {
            let mut db = LobsterDb::open_with_policy(&path, Some(10)).unwrap();
            db.register_workflow("wf", 64);
            for _ in 0..30 {
                let t = db.create_task("wf", 1).unwrap();
                db.mark_running(t).unwrap();
                db.mark_done(t, 10).unwrap();
            }
            assert!(
                db.records_since_snapshot() < 10,
                "policy keeps the tail short, got {}",
                db.records_since_snapshot()
            );
        }
        let db = LobsterDb::recover(&path).unwrap();
        assert_eq!(db.done_tasklets("wf"), 30);
        assert_eq!(db.counters().tasks_completed, 30);
        assert_eq!(db.task_count(), 30);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_after_snapshot_tolerated() {
        let path = tmp_path("torn-after-snap");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 8);
            let t = db.create_task("wf", 4).unwrap();
            db.mark_running(t).unwrap();
            db.mark_done(t, 100).unwrap();
            db.compact().unwrap();
            db.create_task("wf", 4).unwrap(); // the record to tear
        }
        let full = std::fs::read(&path).unwrap();
        // Tear half of the final record.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let db = LobsterDb::recover(&path).unwrap();
        assert_eq!(db.task_count(), 1, "post-snapshot torn record discarded");
        assert_eq!(db.done_tasklets("wf"), 4, "snapshot state intact");
        std::fs::remove_file(&path).ok();
    }

    // ---- explicit transitions ------------------------------------------

    #[test]
    fn illegal_mark_done_from_ready() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        let err = db.mark_done(t, 10).unwrap_err();
        assert_eq!(err.from, Some(TaskState::Ready));
        assert_eq!(db.task_state(t), Some(TaskState::Ready), "state unchanged");
        assert_eq!(db.done_tasklets("wf"), 0);
        assert_eq!(db.counters().rejected_transitions, 1);
    }

    #[test]
    fn illegal_mark_done_twice() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.mark_done(t, 10).unwrap();
        let err = db.mark_done(t, 10).unwrap_err();
        assert_eq!(err.from, Some(TaskState::Done));
        assert_eq!(db.done_tasklets("wf"), 2, "not double counted");
    }

    #[test]
    fn illegal_mark_done_from_lost() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.mark_lost(t).unwrap();
        let err = db.mark_done(t, 10).unwrap_err();
        assert_eq!(err.from, Some(TaskState::Lost));
        assert_eq!(db.unassigned_tasklets("wf"), 2, "tasklets stay returned");
    }

    #[test]
    fn illegal_mark_running_from_done() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.mark_done(t, 10).unwrap();
        let err = db.mark_running(t).unwrap_err();
        assert_eq!(err.from, Some(TaskState::Done));
        assert_eq!(db.attempts(t), 1, "attempt count unchanged");
    }

    #[test]
    fn illegal_mark_running_from_lost() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.mark_lost(t).unwrap();
        assert!(db.mark_running(t).is_err());
        assert_eq!(db.task_state(t), Some(TaskState::Lost));
    }

    #[test]
    fn illegal_mark_lost_from_done() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.mark_done(t, 10).unwrap();
        let err = db.mark_lost(t).unwrap_err();
        assert_eq!(err.from, Some(TaskState::Done));
        assert_eq!(
            db.unassigned_tasklets("wf"),
            0,
            "done tasklets not returned"
        );
    }

    #[test]
    fn transitions_on_unknown_task_rejected() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let ghost = TaskId(404);
        assert_eq!(db.mark_running(ghost).unwrap_err().from, None);
        assert_eq!(db.mark_done(ghost, 1).unwrap_err().from, None);
        assert_eq!(db.mark_lost(ghost).unwrap_err().from, None);
        assert_eq!(db.counters().rejected_transitions, 3);
    }

    #[test]
    fn illegal_transitions_on_withdrawn_task() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 2);
        let t = db.create_task("wf", 2).unwrap();
        db.mark_running(t).unwrap();
        db.record_dead_letter(letter(t.0, Category::Analysis, 2));
        assert_eq!(db.task_state(t), Some(TaskState::Withdrawn));
        assert!(db.mark_running(t).is_err());
        assert!(db.mark_done(t, 1).is_err());
        assert!(db.mark_lost(t).is_err());
    }

    #[test]
    fn merge_group_rejections() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 4);
        let a = db.create_task("wf", 2).unwrap();
        let b = db.create_task("wf", 2).unwrap();
        db.mark_running(a).unwrap();
        db.mark_done(a, 100).unwrap();
        // b not done yet: no output to group.
        assert!(db.create_merge_group(&[(b, 100)]).is_err());
        db.mark_running(b).unwrap();
        db.mark_done(b, 150).unwrap();
        let g = db.create_merge_group(&[(a, 100)]).unwrap();
        // a already claimed by g.
        let err = db.create_merge_group(&[(a, 100)]).unwrap_err();
        assert_eq!(err.task, a);
        // Completing an unknown group is rejected.
        assert!(db
            .mark_merged(Some(TaskId(MERGE_ID_BASE + 77)), &[b], "x.root", 1)
            .is_err());
        db.mark_merged(Some(g), &[a], "m0.root", 100).unwrap();
        // a now merged: cannot merge again, cannot regroup.
        assert!(db.mark_merged(None, &[a], "m1.root", 100).is_err());
        assert!(db.create_merge_group(&[(a, 100)]).is_err());
        // Duplicate merged-file name is rejected.
        assert!(db.mark_merged(None, &[b], "m0.root", 150).is_err());
        db.mark_merged(None, &[b], "m1.root", 150).unwrap();
        std::mem::drop(db);
    }

    // ---- dead letters, accounting, ordering ----------------------------

    #[test]
    fn dead_letter_analysis_withdraws_tasklets() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 6);
        let t = db.create_task("wf", 3).unwrap();
        db.mark_running(t).unwrap();
        db.record_dead_letter(letter(t.0, Category::Analysis, 3));
        assert_eq!(db.dead_tasklets("wf"), 3);
        assert_eq!(db.done_tasklets("wf"), 0);
        assert_eq!(db.dead_letters().len(), 1);
        assert_eq!(db.accounting().dead_lettered, 1);
        // Withdrawn tasklets are NOT returned to the pool.
        assert_eq!(db.unassigned_tasklets("wf"), 3);
    }

    #[test]
    fn dead_letter_merge_withdraws_inputs() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 4);
        let a = db.create_task("wf", 2).unwrap();
        let b = db.create_task("wf", 2).unwrap();
        for t in [a, b] {
            db.mark_running(t).unwrap();
            db.mark_done(t, 100).unwrap();
        }
        let g = db.create_merge_group(&[(a, 100), (b, 100)]).unwrap();
        db.record_dead_letter(DeadLetter {
            category: Category::Merge,
            units: 2,
            ..letter(g.0, Category::Merge, 2)
        });
        assert!(db.open_merge_groups().is_empty(), "group dissolved");
        assert!(db.unmerged_outputs().is_empty(), "inputs withdrawn");
        assert!(db.done_order_unmerged().is_empty());
        assert!(db.mark_merged(None, &[a], "m.root", 100).is_err());
    }

    #[test]
    fn accounting_and_ledger_survive_recovery() {
        let path = tmp_path("acct");
        let (acct_json, letters) = {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 8);
            let t = db.create_task("wf", 4).unwrap();
            db.mark_running(t).unwrap();
            db.record_attempt(&report(t.0, false));
            db.record_backoff(SimDuration::from_mins(15));
            db.mark_running(t).unwrap();
            db.record_attempt(&report(t.0, true));
            db.mark_done(t, 1000).unwrap();
            let u = db.create_task("wf", 4).unwrap();
            db.mark_running(u).unwrap();
            db.record_dead_letter(letter(u.0, Category::Analysis, 4));
            (
                serde_json::to_string(db.accounting()).unwrap(),
                db.dead_letters().to_vec(),
            )
        };
        let mut db = LobsterDb::recover(&path).unwrap();
        assert_eq!(serde_json::to_string(db.accounting()).unwrap(), acct_json);
        assert_eq!(db.dead_letters(), letters.as_slice());
        assert_eq!(db.counters().tasks_failed, 1);
        assert_eq!(db.dead_tasklets("wf"), 4);
        assert_eq!(db.take_replayed_attempts().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn done_order_unmerged_is_finish_order() {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", 6);
        let a = db.create_task("wf", 2).unwrap();
        let b = db.create_task("wf", 2).unwrap();
        let c = db.create_task("wf", 2).unwrap();
        for t in [a, b, c] {
            db.mark_running(t).unwrap();
        }
        // Finish out of id order: c, a, b.
        db.mark_done(c, 30).unwrap();
        db.mark_done(a, 10).unwrap();
        db.mark_done(b, 20).unwrap();
        assert_eq!(db.done_order_unmerged(), vec![(c, 30), (a, 10), (b, 20)]);
        // unmerged_outputs stays id-sorted.
        assert_eq!(db.unmerged_outputs(), vec![(a, 10), (b, 20), (c, 30)]);
    }

    #[test]
    fn merge_numbering_continues_after_recovery() {
        let path = tmp_path("merge-num");
        {
            let mut db = LobsterDb::open(&path).unwrap();
            db.register_workflow("wf", 4);
            let a = db.create_task("wf", 2).unwrap();
            db.mark_running(a).unwrap();
            db.mark_done(a, 100).unwrap();
            let g = db.create_merge_group(&[(a, 100)]).unwrap();
            assert_eq!(g, TaskId(MERGE_ID_BASE));
        }
        {
            let mut db = LobsterDb::open(&path).unwrap();
            // The open group survived the crash.
            assert_eq!(db.open_merge_groups().len(), 1);
            let b = db.create_task("wf", 2).unwrap();
            db.mark_running(b).unwrap();
            db.mark_done(b, 150).unwrap();
            let g2 = db.create_merge_group(&[(b, 150)]).unwrap();
            assert_eq!(g2, TaskId(MERGE_ID_BASE + 1), "merge ids continue");
        }
        std::fs::remove_file(&path).ok();
    }
}
