//! # lobster — data-intensive HEP workloads on non-dedicated clusters
//!
//! This crate is the paper's primary contribution: a *per-user* workload
//! management system that runs millions of analysis tasks on tens of
//! thousands of opportunistic cores, composing the substrates in the
//! sibling crates (`wqueue`, `batchsim`, `cvmfssim`, `gridstore`,
//! `simnet`) exactly as Figure 1 composes HTCondor, Work Queue, Parrot,
//! CVMFS, XrootD, Chirp and Hadoop.
//!
//! ## Module map
//!
//! * [`config`] — the user-provided configuration file (§3: "The user
//!   provides a configuration file which describes the input data sources
//!   and the analysis code").
//! * [`db`] — the Lobster DB: persistent tasklet→task bookkeeping with
//!   crash recovery (the paper uses SQLite; we use an embedded journal).
//! * [`workflow`] — work decomposition: dataset → tasklets → dynamically
//!   sized tasks (§4.1).
//! * [`tasksize`] — the paper's task-size Monte Carlo (Figure 3).
//! * [`access`] — the three data access methods and the staging-vs-
//!   streaming trade-off (§4.2, Figure 4).
//! * [`wrapper`] — the instrumented task wrapper: per-segment timings and
//!   failure codes (§3, §5).
//! * [`merge`] — sequential / Hadoop / interleaved output merging (§4.4,
//!   Figure 7), with a *real* threaded Map-Reduce path.
//! * [`monitor`] — monitoring, accounting (Figure 8) and the
//!   troubleshooting advisor of §5.
//! * [`adaptive`] — dynamic task sizing from observed eviction rates (the
//!   paper's future-work feature, §8).
//! * [`fault`] — fault-injection plans that degrade or black-hole a
//!   squid/Chirp/federation for a window (Figure 11-style bursts on
//!   demand).
//! * [`driver`] — the full-cluster discrete-event driver behind the §6
//!   production runs (Figures 9–11), including the live ops control
//!   surface (poll status mid-run, pause into a durable checkpoint).
//! * [`ops`] — the bridge into the `opsplane` crate: lower a finished
//!   run into a deterministic `metrics.json` snapshot.
//! * [`local`] — the laptop-scale driver that runs real closures through
//!   `wqueue::local` (quickstart path).

pub mod access;
pub mod adaptive;
pub mod config;
pub mod db;
pub mod driver;
pub mod fault;
pub mod local;
pub mod merge;
pub mod monitor;
pub mod ops;
pub mod publish;
pub mod tasksize;
pub mod workflow;
pub mod wrapper;

pub use config::LobsterConfig;
pub use db::LobsterDb;
pub use driver::{ClusterSim, OpsOutcome, OpsRequest, OpsStatus, RunReport};
pub use workflow::Workflow;
