//! Data access methods (§4.2, Figure 4).
//!
//! A task's input can reach the worker three ways: streamed over XrootD,
//! copied by the Work Queue master, or pulled through a Chirp server. The
//! first is *streaming* — I/O overlaps computation; the other two are
//! *staging* — the file lands before the application starts.
//!
//! The timing consequence (Figure 4): with staging, the CPU idles for the
//! whole transfer, so wall-clock = transfer + compute and CPU utilisation
//! is low; with streaming, wall-clock = max(compute, transfer) + a small
//! open cost, so "staging ... results in less CPU utilization but overall
//! runtime longer than streaming".

use serde::{Deserialize, Serialize};
use simkit::time::SimDuration;

/// How tasks obtain their input data.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataAccessMode {
    /// Stream via XrootD (the primary mode in production).
    Stream,
    /// Stage via the Work Queue master.
    StageWq,
    /// Stage via a user-started Chirp server.
    StageChirp,
}

impl DataAccessMode {
    /// Streaming or staging? (groups the modes as §4.2 does).
    pub fn is_streaming(self) -> bool {
        matches!(self, DataAccessMode::Stream)
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DataAccessMode::Stream => "streaming (xrootd)",
            DataAccessMode::StageWq => "staging (wq)",
            DataAccessMode::StageChirp => "staging (chirp)",
        }
    }
}

/// The I/O cost decomposition of one task attempt.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccessTiming {
    /// Blocking transfer before the application starts.
    pub stage_in: SimDuration,
    /// Time the application stalls on data *during* execution.
    pub io_wait: SimDuration,
}

impl AccessTiming {
    /// Fixed cost of opening a remote stream (redirector lookup + TCP).
    pub const STREAM_OPEN: SimDuration = SimDuration::from_secs(30);
    /// Fixed cost of setting up a staged copy.
    pub const STAGE_SETUP: SimDuration = SimDuration::from_secs(10);

    /// Compute the I/O profile of a task needing `input_bytes` while its
    /// application runs for `cpu`, with `rate` bytes/second of delivered
    /// bandwidth for this task's transfer.
    pub fn compute(
        mode: DataAccessMode,
        input_bytes: u64,
        cpu: SimDuration,
        rate: f64,
    ) -> AccessTiming {
        assert!(rate > 0.0, "non-positive transfer rate");
        let transfer = SimDuration::from_secs_f64(input_bytes as f64 / rate);
        match mode {
            DataAccessMode::Stream => {
                // Only the part of the transfer not hidden behind the CPU
                // shows up as a stall.
                let io_wait = transfer.saturating_sub(cpu);
                AccessTiming {
                    stage_in: Self::STREAM_OPEN,
                    io_wait,
                }
            }
            DataAccessMode::StageWq | DataAccessMode::StageChirp => AccessTiming {
                stage_in: Self::STAGE_SETUP + transfer,
                io_wait: SimDuration::ZERO,
            },
        }
    }

    /// Wall-clock of the I/O-plus-compute portion of the task.
    pub fn wall_with_cpu(&self, cpu: SimDuration) -> SimDuration {
        self.stage_in + cpu + self.io_wait
    }

    /// CPU utilisation of that portion.
    pub fn utilisation(&self, cpu: SimDuration) -> f64 {
        let wall = self.wall_with_cpu(cpu).as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            cpu.as_secs_f64() / wall
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn mode_grouping() {
        assert!(DataAccessMode::Stream.is_streaming());
        assert!(!DataAccessMode::StageWq.is_streaming());
        assert!(!DataAccessMode::StageChirp.is_streaming());
    }

    #[test]
    fn streaming_hides_io_behind_cpu() {
        // 6 GB at 10 MB/s = 600 s transfer; CPU 1200 s hides it entirely.
        let t = AccessTiming::compute(
            DataAccessMode::Stream,
            6 * GB,
            SimDuration::from_secs(1200),
            10e6,
        );
        assert_eq!(t.io_wait, SimDuration::ZERO);
        assert_eq!(t.stage_in, AccessTiming::STREAM_OPEN);
    }

    #[test]
    fn streaming_stalls_when_starved() {
        // 12 GB at 10 MB/s = 1200 s transfer; CPU 600 s → 600 s of stall.
        let t = AccessTiming::compute(
            DataAccessMode::Stream,
            12 * GB,
            SimDuration::from_secs(600),
            10e6,
        );
        assert_eq!(t.io_wait, SimDuration::from_secs(600));
    }

    #[test]
    fn staging_blocks_up_front() {
        let t = AccessTiming::compute(
            DataAccessMode::StageChirp,
            6 * GB,
            SimDuration::from_secs(1200),
            10e6,
        );
        assert_eq!(t.io_wait, SimDuration::ZERO);
        assert_eq!(
            t.stage_in,
            AccessTiming::STAGE_SETUP + SimDuration::from_secs(600)
        );
    }

    #[test]
    fn figure4_shape_streaming_beats_staging() {
        // Same task, same bandwidth: staging is longer overall and has
        // lower CPU utilisation — the Figure 4 comparison.
        let cpu = SimDuration::from_secs(1200);
        let stream = AccessTiming::compute(DataAccessMode::Stream, 6 * GB, cpu, 10e6);
        let staged = AccessTiming::compute(DataAccessMode::StageChirp, 6 * GB, cpu, 10e6);
        assert!(stream.wall_with_cpu(cpu) < staged.wall_with_cpu(cpu));
        assert!(stream.utilisation(cpu) > staged.utilisation(cpu));
    }

    #[test]
    fn utilisation_bounds() {
        let cpu = SimDuration::from_secs(100);
        let t = AccessTiming::compute(DataAccessMode::Stream, 0, cpu, 1e6);
        let u = t.utilisation(cpu);
        assert!(u > 0.0 && u <= 1.0);
        let empty = AccessTiming {
            stage_in: SimDuration::ZERO,
            io_wait: SimDuration::ZERO,
        };
        assert_eq!(empty.utilisation(SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-positive transfer rate")]
    fn rejects_zero_rate() {
        AccessTiming::compute(DataAccessMode::Stream, 1, SimDuration::from_secs(1), 0.0);
    }
}
