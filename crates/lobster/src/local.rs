//! Laptop-scale Lobster: real execution through `wqueue::local`.
//!
//! This driver runs an actual workload — Rust closures standing in for the
//! CMSSW application — through the same conceptual pipeline as the cluster
//! driver: workflow decomposition via the [`LobsterDb`], dispatch through
//! a genuine multithreaded Work Queue master (optionally behind foremen),
//! per-worker shared caches, output files landing in an in-process HDFS,
//! and a real Map-Reduce merge pass. The quickstart example is a thin
//! wrapper around [`LocalLobster`].

use crate::db::LobsterDb;
use crate::merge::{merge_in_hadoop, MergePlanner};
use gridstore::hdfs::Hdfs;
use gridstore::mapreduce::MapReduce;
use std::sync::Arc;
use std::time::Duration;
use wqueue::local::{payload, LocalMaster, Payload, TaskContext};
use wqueue::task::{TaskId, TaskSpec};

/// What to run for each tasklet: index → output bytes.
pub type TaskletFn = Arc<dyn Fn(u64, &TaskContext) -> Vec<u8> + Send + Sync>;

/// Configuration of a local run.
#[derive(Clone, Debug)]
pub struct LocalConfig {
    /// Worker processes to attach.
    pub workers: u32,
    /// Slots per worker.
    pub cores_per_worker: u32,
    /// Foremen to interpose (0 = direct connection).
    pub foremen: u32,
    /// Tasklets per task.
    pub tasklets_per_task: u32,
    /// Target merged-file size in bytes.
    pub merge_target_bytes: u64,
    /// Wall-clock budget for the whole run.
    pub timeout: Duration,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            workers: 4,
            cores_per_worker: 2,
            foremen: 0,
            tasklets_per_task: 5,
            merge_target_bytes: 64 * 1024,
            timeout: Duration::from_secs(120),
        }
    }
}

/// Summary of a completed local run.
#[derive(Clone, Debug)]
pub struct LocalRunSummary {
    /// Analysis tasks completed.
    pub tasks_completed: u64,
    /// Analysis tasks that ultimately failed.
    pub tasks_failed: u64,
    /// Small output files produced.
    pub outputs: usize,
    /// Merged files written to storage, `(name, bytes)`.
    pub merged: Vec<(String, u64)>,
    /// Total output bytes before merging.
    pub output_bytes: u64,
}

/// The local (real-execution) Lobster driver.
pub struct LocalLobster {
    cfg: LocalConfig,
    master: LocalMaster,
    db: LobsterDb,
    hdfs: Arc<Hdfs>,
}

impl LocalLobster {
    /// Stand up a master with the configured worker fleet.
    pub fn new(cfg: LocalConfig) -> Self {
        assert!(cfg.workers >= 1 && cfg.cores_per_worker >= 1);
        let mut master = LocalMaster::new();
        if cfg.foremen > 0 {
            let foremen: Vec<_> = (0..cfg.foremen).map(|_| master.attach_foreman()).collect();
            for i in 0..cfg.workers {
                let f = foremen[(i % cfg.foremen) as usize];
                master.attach_worker_via(f, cfg.cores_per_worker);
            }
        } else {
            for _ in 0..cfg.workers {
                master.attach_worker(cfg.cores_per_worker);
            }
        }
        LocalLobster {
            cfg,
            master,
            db: LobsterDb::in_memory(),
            hdfs: Arc::new(Hdfs::new(4, 2)),
        }
    }

    /// The backing storage (outputs and merged files live here).
    pub fn storage(&self) -> &Arc<Hdfs> {
        &self.hdfs
    }

    /// Direct access to the Work Queue master (e.g. to inject evictions).
    pub fn master_mut(&mut self) -> &mut LocalMaster {
        &mut self.master
    }

    /// Run a workflow of `n_tasklets` tasklets: decompose into tasks, run
    /// every tasklet through `work` on the worker fleet, store each task's
    /// output in storage, then merge via a real Map-Reduce pass.
    pub fn run_workflow(
        &mut self,
        name: &str,
        n_tasklets: u64,
        work: TaskletFn,
    ) -> LocalRunSummary {
        self.db.register_workflow(name, n_tasklets);
        // Decompose completely up front (the tasklet list "is created at
        // the beginning of the workflow", §4.1).
        let mut specs: Vec<(TaskId, Vec<u64>)> = Vec::new();
        while let Some(id) = self.db.create_task(name, self.cfg.tasklets_per_task) {
            let tasklets = self.db.task_tasklets(id).expect("created").to_vec();
            specs.push((id, tasklets));
        }
        // Submit: each task runs its tasklets and returns the concatenated
        // output bytes.
        for (id, tasklets) in &specs {
            if let Err(e) = self.db.mark_running(*id) {
                debug_assert!(false, "fresh task rejected: {e}");
            }
            let spec = TaskSpec::new(*id, format!("{name}/{id}")).tasklets(tasklets.clone());
            let p = task_payload(tasklets.clone(), Arc::clone(&work));
            self.master.submit(spec, p);
        }
        // Collect.
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut output_bytes = 0u64;
        let results = self.master.wait_all(self.cfg.timeout);
        for r in &results {
            if r.is_success() {
                completed += 1;
                output_bytes += r.output_bytes;
                if let Err(e) = self.db.mark_done(r.id, r.output_bytes) {
                    debug_assert!(false, "collected task rejected: {e}");
                }
            } else {
                failed += 1;
                if let Err(e) = self.db.mark_lost(r.id) {
                    debug_assert!(false, "failed task rejected: {e}");
                }
            }
        }
        // Persist outputs as small files, mirroring the 10–100 MB files
        // the paper merges. (Contents are synthesized deterministically —
        // the Work Queue result carried only the size.)
        let unmerged = self.db.unmerged_outputs();
        for (id, bytes) in &unmerged {
            self.hdfs.put_bytes(
                &small_name(name, *id),
                vec![(id.0 % 251) as u8; *bytes as usize],
            );
        }
        // Real Hadoop-mode merge.
        let planner = MergePlanner::new(self.cfg.merge_target_bytes);
        let groups = planner.plan_full(&unmerged);
        let named: Vec<(String, Vec<String>)> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                (
                    format!("/store/{name}/merged_{gi}.root"),
                    g.inputs
                        .iter()
                        .map(|(id, _)| small_name(name, *id))
                        .collect(),
                )
            })
            .collect();
        let engine = MapReduce::new((self.cfg.workers * self.cfg.cores_per_worker) as usize);
        let merged_names = merge_in_hadoop(&self.hdfs, &engine, &named);
        for (gi, g) in groups.iter().enumerate() {
            let ids: Vec<TaskId> = g.inputs.iter().map(|i| i.0).collect();
            let merged_name = format!("/store/{name}/merged_{gi}.root");
            if let Err(e) = self.db.mark_merged(None, &ids, &merged_name, g.bytes()) {
                debug_assert!(false, "hadoop-planned merge rejected: {e}");
            }
        }
        let merged = self
            .db
            .merged_files()
            .into_iter()
            .filter(|(n, _)| n.contains(name))
            .collect();
        let _ = merged_names;
        LocalRunSummary {
            tasks_completed: completed,
            tasks_failed: failed,
            outputs: unmerged.len(),
            merged,
            output_bytes,
        }
    }

    /// Shut the worker fleet down cleanly.
    pub fn shutdown(self) {
        self.master.shutdown();
    }
}

fn small_name(workflow: &str, id: TaskId) -> String {
    format!("/store/{workflow}/out_{}.root", id.0)
}

/// Build the Work Queue payload for one task.
fn task_payload(tasklets: Vec<u64>, work: TaskletFn) -> Payload {
    payload(move |ctx| {
        let mut out = Vec::new();
        for &t in &tasklets {
            if ctx.is_cancelled() {
                return Err(wqueue::task::FailureCode::Evicted);
            }
            out.extend(work(t, ctx));
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_worker() -> TaskletFn {
        Arc::new(|t, _ctx| {
            // A tiny deterministic "analysis": reduce the tasklet index.
            let v = (t * 2654435761) % 97;
            vec![v as u8; 100]
        })
    }

    #[test]
    fn end_to_end_local_run() {
        let mut lob = LocalLobster::new(LocalConfig {
            workers: 3,
            cores_per_worker: 2,
            foremen: 0,
            tasklets_per_task: 4,
            merge_target_bytes: 1_000,
            timeout: Duration::from_secs(60),
        });
        let summary = lob.run_workflow("demo", 20, sum_worker());
        assert_eq!(summary.tasks_failed, 0);
        assert_eq!(summary.tasks_completed, 5, "20 tasklets / 4 per task");
        assert_eq!(summary.outputs, 5);
        assert_eq!(summary.output_bytes, 20 * 100);
        // Outputs merged into target-size files: 5 × 400 B → 2 merged.
        assert_eq!(summary.merged.len(), 2);
        let merged_total: u64 = summary.merged.iter().map(|m| m.1).sum();
        assert_eq!(merged_total, 2_000);
        // Storage holds exactly the merged files for this workflow.
        assert_eq!(lob.storage().file_count(), 2);
        lob.shutdown();
    }

    #[test]
    fn foremen_path_works() {
        let mut lob = LocalLobster::new(LocalConfig {
            workers: 4,
            cores_per_worker: 1,
            foremen: 2,
            tasklets_per_task: 3,
            merge_target_bytes: 10_000,
            timeout: Duration::from_secs(60),
        });
        let summary = lob.run_workflow("foreman-demo", 9, sum_worker());
        assert_eq!(summary.tasks_completed, 3);
        assert_eq!(summary.merged.len(), 1);
        lob.shutdown();
    }

    #[test]
    fn cache_is_visible_to_tasklets() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fetches = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fetches);
        let work: TaskletFn = Arc::new(move |_t, ctx| {
            let f = Arc::clone(&f2);
            let data = ctx.cache.get_or_fetch("conditions-db", move || {
                f.fetch_add(1, Ordering::SeqCst);
                vec![9; 64]
            });
            data[..8].to_vec()
        });
        let mut lob = LocalLobster::new(LocalConfig {
            workers: 1,
            cores_per_worker: 2,
            ..LocalConfig::default()
        });
        let summary = lob.run_workflow("cached", 10, work);
        assert_eq!(summary.tasks_failed, 0);
        // One worker → the conditions payload was fetched exactly once.
        assert_eq!(fetches.load(Ordering::SeqCst), 1);
        lob.shutdown();
    }
}
