//! Adaptive task sizing (§8, the paper's future-work feature).
//!
//! "We are investigating ways to make use of the rich monitoring data
//! collected via Lobster to enable automatic performance optimization
//! through dynamic adjustment of task size in the face of changing
//! eviction rates and resource performance."
//!
//! The controller treats eviction as a checkpoint/restart problem: with a
//! per-task overhead `o` and an observed mean time between evictions
//! `MTBF`, the efficiency-optimal task length is Young's approximation
//! `T* = sqrt(2 · o · MTBF)`. The sizer keeps a sliding window of recent
//! attempt outcomes, re-estimates MTBF, and converts `T*` into a tasklet
//! count, clamped and rate-limited so one noisy window cannot whiplash the
//! workload. The `adaptive_sizing` bench shows the payoff when the
//! eviction regime shifts mid-run.

use crate::wrapper::SegmentReport;
use simkit::time::SimDuration;
use std::collections::VecDeque;

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Per-task overhead used in Young's formula.
    pub per_task_overhead: SimDuration,
    /// Mean tasklet CPU time (to convert task length → tasklet count).
    pub tasklet_mean: SimDuration,
    /// Smallest allowed task, in tasklets.
    pub min_tasklets: u32,
    /// Largest allowed task, in tasklets.
    pub max_tasklets: u32,
    /// Attempts remembered in the sliding window.
    pub window: usize,
    /// Maximum relative change per adjustment (rate limiting).
    pub max_step: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            per_task_overhead: SimDuration::from_mins(20),
            tasklet_mean: SimDuration::from_mins(10),
            min_tasklets: 1,
            max_tasklets: 60, // ≈10 h at μ=10 min
            window: 200,
            max_step: 0.5,
        }
    }
}

/// The dynamic task sizer.
#[derive(Clone, Debug)]
pub struct AdaptiveSizer {
    cfg: AdaptiveConfig,
    current: u32,
    /// `(wall_secs, evicted)` per recent attempt.
    window: VecDeque<(f64, bool)>,
}

impl AdaptiveSizer {
    /// Sizer starting at `initial` tasklets per task.
    pub fn new(cfg: AdaptiveConfig, initial: u32) -> Self {
        let current = initial.clamp(cfg.min_tasklets, cfg.max_tasklets);
        AdaptiveSizer {
            cfg,
            current,
            window: VecDeque::new(),
        }
    }

    /// Current recommended tasklets per task.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Ingest one finished attempt.
    pub fn record(&mut self, r: &SegmentReport) {
        self.window.push_back((r.wall().as_secs_f64(), r.evicted));
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
    }

    /// Observed mean time between evictions over the window, or `None`
    /// when no eviction has been seen yet.
    pub fn observed_mtbf(&self) -> Option<SimDuration> {
        let evictions = self.window.iter().filter(|(_, e)| *e).count();
        if evictions == 0 {
            return None;
        }
        // simlint::allow(no-float-order): window is a VecDeque summed in insertion order
        let uptime: f64 = self.window.iter().map(|(w, _)| *w).sum();
        Some(SimDuration::from_secs_f64(uptime / evictions as f64))
    }

    /// Re-derive the task size from the current window (call between
    /// dispatch rounds). Returns the possibly-updated size.
    pub fn adjust(&mut self) -> u32 {
        let mtbf_secs = match self.observed_mtbf() {
            Some(mtbf) => mtbf.as_secs_f64(),
            // No eviction seen yet: the window's accumulated uptime is an
            // optimistic lower bound on the MTBF — grow with evidence
            // rather than jumping straight to the maximum.
            None => {
                // simlint::allow(no-float-order): window is a VecDeque summed in insertion order
                let uptime: f64 = self.window.iter().map(|(w, _)| *w).sum();
                if uptime <= 0.0 {
                    return self.current;
                }
                uptime
            }
        };
        // Young's formula: T* = sqrt(2 · o · MTBF).
        let target_secs = (2.0 * self.cfg.per_task_overhead.as_secs_f64() * mtbf_secs).sqrt();
        let ideal = target_secs / self.cfg.tasklet_mean.as_secs_f64();
        // Rate-limit the move.
        let lo = (self.current as f64 * (1.0 - self.cfg.max_step)).floor();
        let hi = (self.current as f64 * (1.0 + self.cfg.max_step)).ceil();
        let next = ideal.clamp(lo, hi).round() as u32;
        self.current = next.clamp(self.cfg.min_tasklets, self.cfg.max_tasklets);
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::ReportBuilder;
    use simkit::time::SimTime;
    use wqueue::task::{Category, TaskId};

    fn attempt(wall_secs: u64, evicted: bool) -> SegmentReport {
        let b = ReportBuilder::new(TaskId(1), Category::Analysis, 0, 0, SimTime::ZERO);
        if evicted {
            b.evict(SimTime::from_secs(wall_secs))
        } else {
            b.succeed(SimTime::from_secs(wall_secs), 1)
        }
    }

    #[test]
    fn grows_without_evictions() {
        let mut s = AdaptiveSizer::new(AdaptiveConfig::default(), 6);
        for _ in 0..50 {
            s.record(&attempt(4800, false));
        }
        let mut prev = s.current();
        for _ in 0..10 {
            let next = s.adjust();
            assert!(next >= prev);
            prev = next;
        }
        // 50 × 4800 s of eviction-free uptime → T* = sqrt(2·20min·240000s)
        // = 400 min = 40 tasklets at μ=10 min.
        assert_eq!(prev, 40, "grows with accumulated evidence");
        // More eviction-free evidence keeps pushing toward the cap.
        for _ in 0..150 {
            s.record(&attempt(4800, false));
        }
        for _ in 0..10 {
            s.adjust();
        }
        assert_eq!(s.current(), 60, "reaches the max with a full window");
    }

    #[test]
    fn empty_window_holds_position() {
        let mut s = AdaptiveSizer::new(AdaptiveConfig::default(), 6);
        assert_eq!(s.adjust(), 6, "no evidence → no move");
    }

    #[test]
    fn shrinks_under_heavy_eviction() {
        let mut s = AdaptiveSizer::new(AdaptiveConfig::default(), 30);
        // Half the attempts evicted after ~20 min: MTBF ≈ 40 min.
        for i in 0..100 {
            s.record(&attempt(1200, i % 2 == 0));
        }
        for _ in 0..10 {
            s.adjust();
        }
        // T* = sqrt(2·20min·40min) = 40 min → 4 tasklets.
        assert!(
            (3..=6).contains(&s.current()),
            "expected ≈4 tasklets, got {}",
            s.current()
        );
    }

    #[test]
    fn rate_limited_steps() {
        let mut s = AdaptiveSizer::new(AdaptiveConfig::default(), 40);
        for _ in 0..100 {
            s.record(&attempt(600, true)); // brutal eviction regime
        }
        let next = s.adjust();
        assert!(next >= 20, "one step halves at most: {next}");
    }

    #[test]
    fn respects_bounds() {
        let cfg = AdaptiveConfig {
            min_tasklets: 3,
            max_tasklets: 12,
            ..Default::default()
        };
        let mut s = AdaptiveSizer::new(cfg, 100);
        assert_eq!(s.current(), 12, "initial clamped");
        for _ in 0..100 {
            s.record(&attempt(60, true));
        }
        for _ in 0..20 {
            s.adjust();
        }
        assert!(s.current() >= 3);
    }

    #[test]
    fn mtbf_estimation() {
        let mut s = AdaptiveSizer::new(AdaptiveConfig::default(), 6);
        assert!(s.observed_mtbf().is_none());
        s.record(&attempt(3600, false));
        s.record(&attempt(1800, true));
        let mtbf = s.observed_mtbf().unwrap();
        assert!((mtbf.as_secs_f64() - 5400.0).abs() < 1e-6);
    }

    #[test]
    fn window_slides() {
        let cfg = AdaptiveConfig {
            window: 10,
            ..Default::default()
        };
        let mut s = AdaptiveSizer::new(cfg, 6);
        for _ in 0..10 {
            s.record(&attempt(600, true));
        }
        assert!(s.observed_mtbf().is_some());
        // 10 healthy attempts push the evictions out of the window.
        for _ in 0..10 {
            s.record(&attempt(600, false));
        }
        assert!(s.observed_mtbf().is_none());
    }
}
