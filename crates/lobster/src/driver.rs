//! The full-cluster discrete-event driver.
//!
//! This composes every substrate into the system of Figure 1 and runs the
//! production scenarios of §6: workers are provisioned through an
//! opportunistic batch pool and evicted per an availability model; tasks
//! flow master → foreman → worker; each attempt walks the wrapper
//! segments (sandbox stage-in, CVMFS-via-squid environment setup, data
//! stage-in/streaming, execution, Chirp stage-out, result collection);
//! and the monitor ingests every attempt.
//!
//! One [`ClusterSim`] run produces a [`RunReport`] holding the Figure 8
//! accounting, the Figure 10/11 time lines, the Figure 9 dashboard and
//! the Figure 2 eviction log — the benchmark binaries are thin wrappers
//! around this type.

use crate::access::{AccessTiming, DataAccessMode};
use crate::adaptive::{AdaptiveConfig, AdaptiveSizer};
use crate::config::{LobsterConfig, WorkloadKind};
use crate::db::LobsterDb;
use crate::merge::{MergeMode, MergePlanner};
use crate::monitor::{Accounting, Advisor, AdvisorConfig, SegmentHistograms, Timeline};
use crate::workflow::Workflow;
use crate::wrapper::{ReportBuilder, Segment, SegmentReport};
use batchsim::availability::AvailabilityModel;
use batchsim::factory::{FactoryConfig, WorkerFactory};
use batchsim::log::{LeaveReason, WorkerLog};
use batchsim::pool::{OpportunisticPool, PoolConfig};
use cvmfssim::catalog::ReleaseCatalog;
use cvmfssim::squid::{Squid, SquidConfig, TimedOut};
use gridstore::chirp::{ChirpConfig, ChirpServer};
use gridstore::xrootd::{Federation, FederationConfig};
use simkit::prelude::*;
use simkit::stats::TimeSeries;
use simnet::link::FlowId;
use simnet::outage::OutageSchedule;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wqueue::sim::{DispatchBuffer, WorkerTable};
use wqueue::task::{Category, TaskId};

/// Simulation-only parameters on top of [`LobsterConfig`].
#[derive(Clone, Debug)]
pub struct SimParams {
    /// Worker availability (eviction) model.
    pub availability: AvailabilityModel,
    /// Opportunistic pool behaviour (owner demand).
    pub pool: PoolConfig,
    /// Wide-area outage schedule.
    pub outages: OutageSchedule,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Sandbox transfer service time per dispatch (through a foreman).
    pub sandbox_service: SimDuration,
    /// Concurrent sandbox transfers per foreman.
    pub foreman_capacity: usize,
    /// Result-collection time per task.
    pub wq_collect: SimDuration,
    /// Timeline bin width.
    pub timeline_bin: SimDuration,
    /// Merge-task CPU per GB of merged data.
    pub merge_cpu_per_gb: SimDuration,
    /// Hadoop merge: parallel reducers.
    pub hadoop_reducers: usize,
    /// Hadoop merge: per-reducer throughput (bytes/second).
    pub hadoop_rate: f64,
    /// Enable the §8 adaptive task sizing controller.
    pub adaptive: bool,
    /// Controller parameters (match `per_task_overhead` to the actual
    /// per-task overhead of the environment, or Young's formula will
    /// target the wrong task length).
    pub adaptive_cfg: AdaptiveConfig,
    /// Per-stream WAN cap (bytes/second).
    pub wan_stream_cap: f64,
    /// Squid proxy sizing.
    pub squid: SquidConfig,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            availability: AvailabilityModel::notre_dame(),
            pool: PoolConfig::default(),
            outages: OutageSchedule::none(),
            horizon: SimDuration::from_hours(48),
            sandbox_service: SimDuration::from_secs(15),
            foreman_capacity: 50,
            wq_collect: SimDuration::from_secs(10),
            timeline_bin: SimDuration::from_mins(30),
            merge_cpu_per_gb: SimDuration::from_mins(1),
            hadoop_reducers: 20,
            hadoop_rate: 100e6,
            adaptive: false,
            adaptive_cfg: AdaptiveConfig::default(),
            wan_stream_cap: 10e6,
            squid: SquidConfig::default(),
        }
    }
}

/// Driver events.
#[derive(Debug)]
pub enum Ev {
    /// Kick-off: decompose workflows, start provisioning chains.
    Start,
    /// Owner-demand tick.
    PoolTick,
    /// Factory replenishment tick.
    Replenish,
    /// A submitted worker's provisioning delay elapsed.
    WorkerArrive,
    /// A worker's availability interval expired.
    WorkerEvict(u64),
    /// Try to assign buffered tasks to free slots.
    Dispatch,
    /// Sandbox transfer finished; begin environment setup.
    SandboxDone(TaskId),
    /// A squid may have finished serving flows.
    SquidWake(usize),
    /// The federation may have finished transfers.
    FedWake,
    /// An outage window starts or ends.
    OutageWake,
    /// CPU (and streaming input) finished; begin stage-out.
    ExecDone(TaskId),
    /// Chirp upload finished; begin result collection.
    StageOutDone(TaskId),
    /// Result reached the master; the task is complete.
    CollectDone(TaskId),
    /// One Hadoop merge group finished.
    HadoopGroupDone(usize),
    /// A slot held back after an environment-setup failure frees up.
    SlotFree(u64),
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase {
    Queued,
    Sandbox,
    EnvSetup,
    /// Staged input transfer in flight (blocks execution).
    Data,
    Exec,
    StageOut,
    Collect,
}

struct TaskInfo {
    wf: usize,
    category: Category,
    input_bytes: u64,
    output_bytes: u64,
    cpu: SimDuration,
    phase: Phase,
    worker: Option<u64>,
    builder: Option<ReportBuilder>,
    enqueued_at: SimTime,
    phase_started: SimTime,
    env_flow: Option<(usize, FlowId)>,
    data_flow: Option<FlowId>,
    /// Outputs a merge task combines (None for analysis tasks).
    merge_inputs: Option<Vec<(TaskId, u64)>>,
    attempt: u32,
}

/// The harvestable outcome of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Figure 8 accounting.
    pub accounting: Accounting,
    /// Figure 10/11 time lines (all tasks).
    pub timeline: Timeline,
    /// Analysis-task completions per bin (Figure 7 white bars).
    pub analysis_done: TimeSeries,
    /// Merge completions per bin (Figure 7 gray bars).
    pub merge_done: TimeSeries,
    /// §5 advisor diagnosis.
    pub advice: Vec<crate::monitor::Advice>,
    /// §5 per-segment duration histograms.
    pub segment_histograms: SegmentHistograms,
    /// Figure 9 dashboard rows (consumer, bytes).
    pub dashboard: Vec<(String, f64)>,
    /// Worker join/leave log (Figure 2 input).
    pub worker_log: WorkerLog,
    /// Successful analysis attempts.
    pub tasks_completed: u64,
    /// Failed attempts (all causes, incl. evictions).
    pub tasks_failed: u64,
    /// Attempts lost to eviction.
    pub evictions: u64,
    /// Merge tasks (or Hadoop groups) completed.
    pub merges_completed: u64,
    /// Merged files written, `(name, bytes)`.
    pub merged_files: Vec<(String, u64)>,
    /// Instant everything (processing + merging) finished, if it did.
    pub finished_at: Option<SimTime>,
    /// Simulated end of the run.
    pub ended_at: SimTime,
    /// Peak concurrent tasks observed.
    pub peak_concurrency: f64,
    /// Final task size chosen by the adaptive controller (if enabled).
    pub final_task_size: u32,
}

/// The cluster simulation model.
pub struct ClusterSim {
    cfg: LobsterConfig,
    params: SimParams,
    rng: SimRng,
    db: LobsterDb,
    workflows: Vec<Workflow>,
    tasks: BTreeMap<TaskId, TaskInfo>,
    buffer: DispatchBuffer,
    /// Merge tasks awaiting dispatch (kept out of the analysis buffer so
    /// bookkeeping stays by category).
    merge_queue: VecDeque<TaskId>,
    table: WorkerTable,
    factory: WorkerFactory,
    pool: OpportunisticPool,
    log: WorkerLog,
    worker_evict_ev: BTreeMap<u64, EventId>,
    running_on: BTreeMap<u64, BTreeSet<TaskId>>,
    foremen: Vec<Server>,
    squids: Vec<Squid>,
    squid_wake: Vec<Option<EventId>>,
    squid_flows: Vec<BTreeMap<FlowId, TaskId>>,
    /// Per-squid: cold-fill flow → worker (alien-cache shared fills).
    squid_fill_flows: Vec<BTreeMap<FlowId, u64>>,
    /// Worker → (squid, fill flow, tasks waiting on the fill).
    env_fill: BTreeMap<u64, (usize, FlowId, Vec<TaskId>)>,
    fed: Federation,
    fed_wake: Option<EventId>,
    fed_flows: BTreeMap<FlowId, TaskId>,
    chirp: ChirpServer,
    catalog: ReleaseCatalog,
    planner: MergePlanner,
    outputs_in_merge: BTreeSet<TaskId>,
    /// Finished outputs not yet claimed by any merge group, in finish
    /// order (incremental — avoids rescanning the DB per completion).
    pending_outputs: VecDeque<(TaskId, u64)>,
    pending_bytes: u64,
    /// Outputs not yet inside a *completed* merged file.
    unmerged_count: u64,
    merge_counter: u64,
    hadoop_groups: Vec<(Vec<(TaskId, u64)>, u64)>,
    hadoop_started: bool,
    sequential_planned: bool,
    // Monitoring.
    accounting: Accounting,
    timeline: Timeline,
    advisor: Advisor,
    seg_hist: SegmentHistograms,
    analysis_done: TimeSeries,
    merge_done: TimeSeries,
    tasks_completed: u64,
    tasks_failed: u64,
    evictions: u64,
    merges_completed: u64,
    finished_at: Option<SimTime>,
    sizer: AdaptiveSizer,
}

impl ClusterSim {
    /// The consumer label used for federation accounting.
    pub const CONSUMER: &'static str = "T3_US_NotreDame (Lobster)";

    /// Build a simulation from a Lobster configuration, sim parameters and
    /// the workflows' decompositions (one per `cfg.workflows` entry,
    /// produced by [`Workflow::from_dataset`] / [`Workflow::simulation`]).
    pub fn new(cfg: LobsterConfig, params: SimParams, workflows: Vec<Workflow>) -> Self {
        assert_eq!(
            cfg.workflows.len(),
            workflows.len(),
            "one decomposition per workflow"
        );
        assert!(
            cfg.validate().is_empty(),
            "invalid config: {:?}",
            cfg.validate()
        );
        let mut db = LobsterDb::in_memory();
        for wf in &workflows {
            db.register_workflow(&wf.name, wf.n_tasklets());
        }
        let rng = SimRng::new(cfg.seed);
        let n_workers = (cfg.workers.target_cores / cfg.workers.cores_per_worker).max(1);
        let factory = WorkerFactory::new(FactoryConfig {
            target_workers: n_workers,
            cores_per_worker: cfg.workers.cores_per_worker,
            mean_submit_delay: SimDuration::from_mins(2),
            burst: 2_000,
        });
        let pool = OpportunisticPool::new(params.pool, rng.split(1));
        let n_squids = cfg.infra.n_squids as usize;
        let squids: Vec<Squid> = (0..n_squids).map(|_| Squid::new(params.squid)).collect();
        let fed = Federation::new(FederationConfig {
            wan_bandwidth: simnet::units::gbit_per_s(cfg.infra.wan_gbits),
            per_stream_cap: params.wan_stream_cap,
            outages: params.outages.clone(),
        });
        let chirp = ChirpServer::new(ChirpConfig {
            max_connections: cfg.infra.chirp_connections as usize,
            ..ChirpConfig::default()
        });
        let foremen: Vec<Server> = (0..cfg.infra.n_foremen.max(1) as usize)
            .map(|_| Server::new(params.foreman_capacity))
            .collect();
        let planner = MergePlanner::new(cfg.merge_target_bytes);
        let timeline = Timeline::new(params.timeline_bin);
        let analysis_done = TimeSeries::new(params.timeline_bin);
        let merge_done = TimeSeries::new(params.timeline_bin);
        let initial_size = cfg.workflows[0].tasklets_per_task;
        let sizer = AdaptiveSizer::new(params.adaptive_cfg, initial_size);
        let catalog = ReleaseCatalog::cmssw_default(cfg.seed ^ 0xCAFE);
        ClusterSim {
            rng: rng.split(0),
            cfg,
            params,
            db,
            workflows,
            tasks: BTreeMap::new(),
            buffer: DispatchBuffer::new(),
            merge_queue: VecDeque::new(),
            table: WorkerTable::new(),
            factory,
            pool,
            log: WorkerLog::new(),
            worker_evict_ev: BTreeMap::new(),
            running_on: BTreeMap::new(),
            foremen,
            squid_wake: vec![None; n_squids],
            squid_flows: (0..n_squids).map(|_| BTreeMap::new()).collect(),
            squid_fill_flows: (0..n_squids).map(|_| BTreeMap::new()).collect(),
            env_fill: BTreeMap::new(),
            squids,
            fed,
            fed_wake: None,
            fed_flows: BTreeMap::new(),
            chirp,
            catalog,
            planner,
            outputs_in_merge: BTreeSet::new(),
            pending_outputs: VecDeque::new(),
            pending_bytes: 0,
            unmerged_count: 0,
            merge_counter: 0,
            hadoop_groups: Vec::new(),
            hadoop_started: false,
            sequential_planned: false,
            accounting: Accounting::default(),
            timeline,
            advisor: Advisor::new(),
            seg_hist: SegmentHistograms::new(),
            analysis_done,
            merge_done,
            tasks_completed: 0,
            tasks_failed: 0,
            evictions: 0,
            merges_completed: 0,
            finished_at: None,
            sizer,
        }
    }

    /// Run to the horizon and harvest the report.
    pub fn run(cfg: LobsterConfig, params: SimParams, workflows: Vec<Workflow>) -> RunReport {
        let horizon = params.horizon;
        let mut engine = Engine::new(ClusterSim::new(cfg, params, workflows));
        engine.prime(SimDuration::ZERO, Ev::Start);
        let ended_at = engine.run_until(SimTime::ZERO + horizon);
        let sim = engine.into_model();
        let concurrency = sim.timeline.concurrency();
        let peak = concurrency.iter().copied().fold(0.0, f64::max);
        RunReport {
            advice: sim.advisor.diagnose(&AdvisorConfig::default()),
            segment_histograms: sim.seg_hist,
            accounting: sim.accounting,
            timeline: sim.timeline,
            analysis_done: sim.analysis_done,
            merge_done: sim.merge_done,
            dashboard: sim.fed.dashboard(),
            worker_log: sim.log,
            tasks_completed: sim.tasks_completed,
            tasks_failed: sim.tasks_failed,
            evictions: sim.evictions,
            merges_completed: sim.merges_completed,
            merged_files: sim.db.merged_files(),
            finished_at: sim.finished_at,
            ended_at,
            peak_concurrency: peak,
            final_task_size: sim.sizer.current(),
        }
    }

    fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    // ----- task creation ---------------------------------------------------

    fn task_size(&self) -> u32 {
        if self.params.adaptive {
            self.sizer.current()
        } else {
            self.cfg.workflows[0].tasklets_per_task
        }
    }

    fn refill_buffer(&mut self, now: SimTime) {
        while self.buffer.deficit() > 0 {
            let size = self.task_size();
            let mut created = false;
            for wf_idx in 0..self.workflows.len() {
                let name = self.workflows[wf_idx].name.clone();
                if let Some(id) = self.db.create_task(&name, size) {
                    let n = self.db.task_tasklets(id).expect("created").len() as u32;
                    let wf = &self.workflows[wf_idx];
                    let cpu = wf.sample_task_cpu(n, &mut self.rng);
                    self.tasks.insert(
                        id,
                        TaskInfo {
                            wf: wf_idx,
                            category: Category::Analysis,
                            input_bytes: wf.task_input_bytes(n),
                            output_bytes: wf.task_output_bytes(n),
                            cpu,
                            phase: Phase::Queued,
                            worker: None,
                            builder: None,
                            enqueued_at: now,
                            phase_started: now,
                            env_flow: None,
                            data_flow: None,
                            merge_inputs: None,
                            attempt: 0,
                        },
                    );
                    self.buffer.push(id);
                    created = true;
                    break;
                }
            }
            if !created {
                break;
            }
        }
    }

    fn create_merge_task(&mut self, now: SimTime, inputs: Vec<(TaskId, u64)>) -> TaskId {
        let bytes: u64 = inputs.iter().map(|i| i.1).sum();
        let id = TaskId(1_000_000_000 + self.merge_counter);
        self.merge_counter += 1;
        let cpu = self.params.merge_cpu_per_gb.mul_f64(bytes as f64 / 1e9);
        for (t, _) in &inputs {
            self.outputs_in_merge.insert(*t);
        }
        self.tasks.insert(
            id,
            TaskInfo {
                wf: 0,
                category: Category::Merge,
                input_bytes: bytes,
                output_bytes: bytes,
                cpu,
                phase: Phase::Queued,
                worker: None,
                builder: None,
                enqueued_at: now,
                phase_started: now,
                env_flow: None,
                data_flow: None,
                merge_inputs: Some(inputs),
                attempt: 0,
            },
        );
        self.merge_queue.push_back(id);
        id
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.refill_buffer(now);
        loop {
            // Merge tasks first (they unblock publication), then analysis.
            let (id, from_merge) = if let Some(&id) = self.merge_queue.front() {
                (id, true)
            } else if let Some(id) = self.buffer.pop() {
                (id, false)
            } else {
                break;
            };
            let Some(worker) = self.table.claim_slot() else {
                if !from_merge {
                    self.buffer.push_front(id);
                }
                break;
            };
            if from_merge {
                self.merge_queue.pop_front();
            }
            let foreman = self.table.get(worker).expect("claimed").foreman;
            let grant = self.foremen[foreman].offer(now, self.params.sandbox_service);
            let t = self.tasks.get_mut(&id).expect("queued task");
            t.phase = Phase::Sandbox;
            t.worker = Some(worker);
            t.attempt += 1;
            t.phase_started = now;
            let mut builder = ReportBuilder::new(id, t.category, t.attempt - 1, worker, now);
            builder.times_mut().queued = now - t.enqueued_at;
            builder.times_mut().wq_stage_in = grant.done - now;
            t.builder = Some(builder);
            if t.category == Category::Analysis {
                self.db.mark_running(id);
            }
            self.running_on.entry(worker).or_default().insert(id);
            ctx.schedule_at(grant.done, Ev::SandboxDone(id));
        }
    }

    // ----- wrapper segments -------------------------------------------------

    fn on_sandbox_done(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(t) = self.tasks.get_mut(&id) else {
            return;
        };
        if t.phase != Phase::Sandbox {
            return; // stale (evicted meanwhile)
        }
        t.phase = Phase::EnvSetup;
        t.phase_started = now;
        let worker = t.worker.expect("dispatched");
        let hot = self.table.get(worker).map(|w| w.cache_hot).unwrap_or(false);
        let squid_idx = (worker as usize) % self.squids.len();
        if hot {
            // Cheap re-validation + conditions payload, one per task.
            let bytes = self.catalog.hot_bytes();
            match self.squids[squid_idx].request(now, bytes) {
                Ok(flow) => {
                    self.squid_flows[squid_idx].insert(flow, id);
                    self.tasks.get_mut(&id).expect("present").env_flow = Some((squid_idx, flow));
                    self.reschedule_squid(squid_idx, ctx);
                }
                Err(TimedOut) => self.fail_task(id, Segment::EnvInit, ctx),
            }
        } else if self.cfg.infra.alien_cache {
            // Alien cache (§4.3): one cold fill per worker; concurrent
            // tasks on the same worker *join* the in-flight fill instead
            // of issuing their own.
            if let Some((_, _, waiters)) = self.env_fill.get_mut(&worker) {
                waiters.push(id);
                return;
            }
            let bytes = self.catalog.total_bytes();
            match self.squids[squid_idx].request(now, bytes) {
                Ok(flow) => {
                    self.squid_fill_flows[squid_idx].insert(flow, worker);
                    self.env_fill.insert(worker, (squid_idx, flow, vec![id]));
                    self.reschedule_squid(squid_idx, ctx);
                }
                Err(TimedOut) => self.fail_task(id, Segment::EnvInit, ctx),
            }
        } else {
            // No alien cache: every task pays the full cold fill into its
            // own cache directory (Figure 6(b) economics).
            let bytes = self.catalog.total_bytes();
            match self.squids[squid_idx].request(now, bytes) {
                Ok(flow) => {
                    self.squid_flows[squid_idx].insert(flow, id);
                    self.tasks.get_mut(&id).expect("present").env_flow = Some((squid_idx, flow));
                    self.reschedule_squid(squid_idx, ctx);
                }
                Err(TimedOut) => self.fail_task(id, Segment::EnvInit, ctx),
            }
        }
    }

    fn reschedule_squid(&mut self, idx: usize, ctx: &mut Ctx<Ev>) {
        if let Some(ev) = self.squid_wake[idx].take() {
            ctx.cancel(ev);
        }
        if let Some((when, _)) = self.squids[idx].next_completion() {
            self.squid_wake[idx] = Some(ctx.schedule_at(when, Ev::SquidWake(idx)));
        }
    }

    fn on_squid_wake(&mut self, idx: usize, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.squid_wake[idx] = None;
        let done = self.squids[idx].completions(now);
        for flow in done {
            if let Some(worker) = self.squid_fill_flows[idx].remove(&flow) {
                // A shared cold fill finished: the worker is hot and every
                // waiting task proceeds.
                self.table.set_cache_hot(worker);
                let waiters = self
                    .env_fill
                    .remove(&worker)
                    .map(|(_, _, w)| w)
                    .unwrap_or_default();
                for id in waiters {
                    let Some(t) = self.tasks.get_mut(&id) else {
                        continue;
                    };
                    if t.phase != Phase::EnvSetup || t.worker != Some(worker) {
                        continue;
                    }
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().env_setup = now - t.phase_started;
                    }
                    self.begin_data_phase(id, ctx);
                }
                continue;
            }
            let Some(id) = self.squid_flows[idx].remove(&flow) else {
                continue;
            };
            let Some(t) = self.tasks.get_mut(&id) else {
                continue;
            };
            if t.phase != Phase::EnvSetup {
                continue;
            }
            t.env_flow = None;
            if let Some(b) = t.builder.as_mut() {
                b.times_mut().env_setup = now - t.phase_started;
            }
            self.begin_data_phase(id, ctx);
        }
        self.reschedule_squid(idx, ctx);
    }

    fn begin_data_phase(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let t = self.tasks.get_mut(&id).expect("present");
        t.phase = Phase::Exec;
        t.phase_started = now;
        let (kind, input, cpu, category) =
            (self.workflows[t.wf].kind, t.input_bytes, t.cpu, t.category);
        let streaming = category == Category::Merge
            || (kind == WorkloadKind::DataProcessing && self.cfg.access == DataAccessMode::Stream);
        if input == 0 {
            // Pure generation: straight to execution.
            if let Some(b) = t.builder.as_mut() {
                b.times_mut().cpu = cpu;
            }
            ctx.schedule(cpu, Ev::ExecDone(id));
        } else if kind == WorkloadKind::Simulation {
            // Pile-up overlay staged from *local* storage via Chirp (§6):
            // the only input a simulation task has.
            let grant = self.chirp.get(now, input);
            if let Some(b) = t.builder.as_mut() {
                b.times_mut().stage_in = grant.done - now;
                b.times_mut().cpu = cpu;
            }
            ctx.schedule_at(grant.done + cpu, Ev::ExecDone(id));
        } else if streaming {
            // XrootD stream: execution overlaps the WAN transfer.
            match self.fed.open(now, Self::CONSUMER, input, &mut self.rng) {
                Ok(flow) => {
                    self.fed_flows.insert(flow, id);
                    let t = self.tasks.get_mut(&id).expect("present");
                    t.data_flow = Some(flow);
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().stage_in = AccessTiming::STREAM_OPEN;
                        b.times_mut().cpu = cpu;
                    }
                    self.reschedule_fed(ctx);
                }
                Err(_) => self.fail_task(id, Segment::StageIn, ctx),
            }
        } else {
            // Staged remote input (Chirp or WQ transfer, §4.2): the data
            // crosses the same WAN, but the file must fully land before
            // execution starts — no compute/transfer overlap. This is the
            // penalty Figure 4 charges against staging.
            match self.fed.open(now, Self::CONSUMER, input, &mut self.rng) {
                Ok(flow) => {
                    self.fed_flows.insert(flow, id);
                    let t = self.tasks.get_mut(&id).expect("present");
                    t.data_flow = Some(flow);
                    t.phase = Phase::Data;
                }
                Err(_) => self.fail_task(id, Segment::StageIn, ctx),
            }
            self.reschedule_fed(ctx);
        }
    }

    fn reschedule_fed(&mut self, ctx: &mut Ctx<Ev>) {
        if let Some(ev) = self.fed_wake.take() {
            ctx.cancel(ev);
        }
        if let Some((when, _)) = self.fed.next_completion() {
            self.fed_wake = Some(ctx.schedule_at(when, Ev::FedWake));
        }
    }

    fn on_fed_wake(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.fed_wake = None;
        let done = self.fed.completions(now);
        for flow in done {
            let Some(id) = self.fed_flows.remove(&flow) else {
                continue;
            };
            let Some(t) = self.tasks.get_mut(&id) else {
                continue;
            };
            if t.data_flow != Some(flow) {
                continue;
            }
            match t.phase {
                Phase::Exec => {
                    t.data_flow = None;
                    // Streaming: CPU started when the stream opened; the
                    // task ends when both stream and CPU are done.
                    let cpu_end = t.phase_started + t.cpu;
                    let end = cpu_end.max(now);
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().io_wait = now.since(cpu_end);
                    }
                    ctx.schedule_at(end, Ev::ExecDone(id));
                }
                Phase::Data => {
                    t.data_flow = None;
                    // Staged: the file landed; execution starts now.
                    let stage_in = now - t.phase_started;
                    t.phase = Phase::Exec;
                    t.phase_started = now;
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().stage_in = AccessTiming::STAGE_SETUP + stage_in;
                        b.times_mut().cpu = t.cpu;
                    }
                    ctx.schedule_at(now + t.cpu, Ev::ExecDone(id));
                }
                _ => {}
            }
        }
        self.reschedule_fed(ctx);
    }

    fn on_exec_done(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(t) = self.tasks.get_mut(&id) else {
            return;
        };
        if t.phase != Phase::Exec || t.data_flow.is_some() {
            return; // stale, or the input stream is still in flight
        }
        t.phase = Phase::StageOut;
        t.phase_started = now;
        let grant = self.chirp.put(now, t.output_bytes);
        if let Some(b) = t.builder.as_mut() {
            b.times_mut().stage_out = grant.done - now;
        }
        ctx.schedule_at(grant.done, Ev::StageOutDone(id));
    }

    fn on_stage_out_done(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        let Some(t) = self.tasks.get_mut(&id) else {
            return;
        };
        if t.phase != Phase::StageOut {
            return;
        }
        t.phase = Phase::Collect;
        if let Some(b) = t.builder.as_mut() {
            b.times_mut().wq_stage_out = self.params.wq_collect;
        }
        ctx.schedule(self.params.wq_collect, Ev::CollectDone(id));
    }

    fn on_collect_done(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        match self.tasks.get(&id) {
            Some(t) if t.phase == Phase::Collect => {}
            _ => return,
        }
        let mut t = self.tasks.remove(&id).expect("present");
        let worker = t.worker.expect("running");
        self.release_task_slot(worker, id);
        let report = t
            .builder
            .take()
            .expect("built")
            .succeed(now, t.output_bytes);
        self.ingest(&report);
        if t.category == Category::Merge {
            self.merges_completed += 1;
            self.merge_done.mark(now);
            let inputs = t.merge_inputs.take().expect("merge task");
            let ids: Vec<TaskId> = inputs.iter().map(|i| i.0).collect();
            let bytes: u64 = inputs.iter().map(|i| i.1).sum();
            let name = format!("merged_{}.root", id.0);
            self.unmerged_count = self.unmerged_count.saturating_sub(ids.len() as u64);
            self.db.mark_merged(&ids, &name, bytes);
            for tid in ids {
                self.outputs_in_merge.remove(&tid);
            }
        } else {
            self.tasks_completed += 1;
            self.analysis_done.mark(now);
            self.db.mark_done(id, t.output_bytes);
            self.unmerged_count += 1;
            self.pending_outputs.push_back((id, t.output_bytes));
            self.pending_bytes += t.output_bytes;
            self.maybe_plan_merges(now, ctx);
        }
        self.check_finished(now);
        self.dispatch(ctx);
    }

    // ----- merging ----------------------------------------------------------

    /// Drain one target-sized group off the pending-output queue, or the
    /// whole remainder when `flush` is set.
    fn drain_group(&mut self, flush: bool) -> Option<Vec<(TaskId, u64)>> {
        let target = self.planner.target_bytes();
        if !flush && self.pending_bytes < target {
            return None;
        }
        let mut group = Vec::new();
        let mut acc = 0u64;
        while acc < target {
            let Some((id, bytes)) = self.pending_outputs.pop_front() else {
                break;
            };
            acc += bytes;
            self.pending_bytes -= bytes;
            group.push((id, bytes));
        }
        if group.is_empty() {
            None
        } else {
            Some(group)
        }
    }

    fn analysis_progress(&self) -> f64 {
        let total: u64 = self.workflows.iter().map(|w| w.n_tasklets()).sum();
        let done: u64 = self
            .workflows
            .iter()
            .map(|w| self.db.done_tasklets(&w.name))
            .sum();
        if total == 0 {
            1.0
        } else {
            done as f64 / total as f64
        }
    }

    fn analysis_exhausted(&self) -> bool {
        self.db.all_done()
    }

    fn maybe_plan_merges(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        match self.cfg.merge {
            MergeMode::Interleaved => {
                // "Merge tasks will only be created when enough processing
                // tasks have finished to create a sufficiently large merged
                // output file", gated at 10 % workflow progress (§4.4).
                let flush = self.analysis_exhausted();
                if !flush && self.analysis_progress() < 0.10 {
                    return;
                }
                while let Some(group) = self.drain_group(flush) {
                    self.create_merge_task(now, group);
                }
            }
            MergeMode::Sequential => {
                if self.analysis_exhausted() && !self.sequential_planned {
                    self.sequential_planned = true;
                    while let Some(group) = self.drain_group(true) {
                        self.create_merge_task(now, group);
                    }
                }
            }
            MergeMode::Hadoop => {
                if self.analysis_exhausted() && !self.hadoop_started {
                    self.hadoop_started = true;
                    self.plan_hadoop(now, ctx);
                }
            }
        }
    }

    /// LPT-assign merge groups to reducers; schedule per-group completions.
    fn plan_hadoop(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        let mut outs = Vec::new();
        while let Some(group) = self.drain_group(true) {
            outs.push(group);
        }
        let mut groups: Vec<crate::merge::MergeGroup> = outs
            .into_iter()
            .map(|inputs| crate::merge::MergeGroup { inputs })
            .collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.bytes()));
        let mut reducer_free = vec![SimDuration::ZERO; self.params.hadoop_reducers.max(1)];
        for g in groups {
            let bytes = g.bytes();
            // The merge reads and writes the data once each, in-cluster.
            let dur = SimDuration::from_secs_f64(2.0 * bytes as f64 / self.params.hadoop_rate);
            let r = reducer_free
                .iter()
                .enumerate()
                .min_by_key(|(_, d)| **d)
                .map(|(i, _)| i)
                .expect("at least one reducer");
            let start = reducer_free[r];
            reducer_free[r] = start + dur;
            let gi = self.hadoop_groups.len();
            for (t, _) in &g.inputs {
                self.outputs_in_merge.insert(*t);
            }
            self.hadoop_groups.push((g.inputs, bytes));
            ctx.schedule_at(now + start + dur, Ev::HadoopGroupDone(gi));
        }
    }

    fn on_hadoop_group_done(&mut self, gi: usize, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let (inputs, bytes) = self.hadoop_groups[gi].clone();
        let ids: Vec<TaskId> = inputs.iter().map(|i| i.0).collect();
        let name = format!("merged_h{gi}.root");
        self.unmerged_count = self.unmerged_count.saturating_sub(ids.len() as u64);
        self.db.mark_merged(&ids, &name, bytes);
        for id in ids {
            self.outputs_in_merge.remove(&id);
        }
        self.merges_completed += 1;
        self.merge_done.mark(now);
        self.check_finished(now);
        let _ = ctx;
    }

    // ----- failure & eviction ------------------------------------------------

    fn fail_task(&mut self, id: TaskId, segment: Segment, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(mut t) = self.tasks.remove(&id) else {
            return;
        };
        let worker = t.worker.expect("running");
        if segment == Segment::EnvInit {
            // The proxy tier is overloaded: hold the slot back instead of
            // immediately re-dispatching into the same congestion (the
            // client-side retry backoff of §6).
            if let Some(set) = self.running_on.get_mut(&worker) {
                set.remove(&id);
            }
            ctx.schedule(SimDuration::from_mins(15), Ev::SlotFree(worker));
        } else {
            self.release_task_slot(worker, id);
        }
        self.abort_flows(&mut t, now);
        if let Some(b) = t.builder.take() {
            let report = b.fail(segment, now);
            self.ingest(&report);
        }
        self.tasks_failed += 1;
        self.requeue(id, t, now);
        self.dispatch(ctx);
    }

    fn abort_flows(&mut self, t: &mut TaskInfo, now: SimTime) {
        if let Some((idx, flow)) = t.env_flow.take() {
            self.squids[idx].abort(now, flow);
            self.squid_flows[idx].remove(&flow);
        }
        if let Some(flow) = t.data_flow.take() {
            self.fed.abort(now, flow);
            self.fed_flows.remove(&flow);
        }
    }

    /// Return a task's work to the system after a failed attempt.
    fn requeue(&mut self, id: TaskId, t: TaskInfo, now: SimTime) {
        if t.category == Category::Merge {
            // Re-enqueue the same merge group.
            let mut t = t;
            t.phase = Phase::Queued;
            t.worker = None;
            t.builder = None;
            t.enqueued_at = now;
            self.tasks.insert(id, t);
            self.merge_queue.push_back(id);
        } else {
            // Tasklets go back to the pool; fresh tasks re-cover them.
            self.db.mark_lost(id);
        }
    }

    fn release_task_slot(&mut self, worker: u64, id: TaskId) {
        if let Some(set) = self.running_on.get_mut(&worker) {
            if set.remove(&id) {
                self.table.release_slot(worker);
            }
        }
    }

    fn evict_worker(&mut self, worker: u64, release_pool: bool, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(w) = self.table.disconnect(worker) else {
            return;
        };
        if let Some(ev) = self.worker_evict_ev.remove(&worker) {
            ctx.cancel(ev);
        }
        self.log.leave(worker, now, LeaveReason::Evicted);
        self.factory.on_exit();
        if release_pool {
            self.pool.release(w.cores);
        }
        // Abort the worker's shared cold fill, if one is in flight.
        if let Some((idx, flow, _)) = self.env_fill.remove(&worker) {
            self.squids[idx].abort(now, flow);
            self.squid_fill_flows[idx].remove(&flow);
        }
        let mut victims: Vec<TaskId> = self
            .running_on
            .remove(&worker)
            .unwrap_or_default()
            .into_iter()
            .collect();
        victims.sort();
        for id in victims {
            let Some(mut t) = self.tasks.remove(&id) else {
                continue;
            };
            self.abort_flows(&mut t, now);
            if let Some(b) = t.builder.take() {
                let report = b.evict(now);
                self.ingest(&report);
            }
            self.tasks_failed += 1;
            self.evictions += 1;
            self.requeue(id, t, now);
        }
        self.dispatch(ctx);
    }

    // ----- provisioning -------------------------------------------------------

    fn on_worker_arrive(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let cores = self.factory.config().cores_per_worker;
        let granted = self.pool.claim(cores);
        self.factory.on_start_attempt(granted);
        if !granted {
            return;
        }
        let foreman = (self.rng.next_u64() as usize) % self.foremen.len();
        let id = self.table.connect(cores, foreman, now);
        self.log.join(id, now);
        let survival = self.params.availability.sample(&mut self.rng);
        if survival < SimDuration::MAX {
            let ev = ctx.schedule(survival, Ev::WorkerEvict(id));
            self.worker_evict_ev.insert(id, ev);
        }
        self.dispatch(ctx);
    }

    // ----- monitoring -----------------------------------------------------------

    fn ingest(&mut self, report: &SegmentReport) {
        self.accounting.record(report);
        self.timeline.record(report);
        self.advisor.record(report);
        self.seg_hist.record(report);
        if self.params.adaptive {
            self.sizer.record(report);
            if report.evicted || report.task.0.is_multiple_of(20) {
                self.sizer.adjust();
            }
        }
    }

    fn check_finished(&mut self, now: SimTime) {
        if self.finished_at.is_none()
            && self.analysis_exhausted()
            && self.unmerged_count == 0
            && self.merge_queue.is_empty()
            && self.tasks.is_empty()
        {
            self.finished_at = Some(now);
        }
    }
}

impl Model for ClusterSim {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::Start => {
                self.refill_buffer(ctx.now());
                ctx.schedule(SimDuration::ZERO, Ev::Replenish);
                ctx.schedule(self.pool.tick_interval(), Ev::PoolTick);
                if let Some(t) = self.fed.next_outage_transition(ctx.now()) {
                    ctx.schedule_at(t, Ev::OutageWake);
                }
            }
            Ev::Replenish => {
                if !self.done() {
                    let delays = self.factory.replenish(&mut self.rng);
                    for d in delays {
                        ctx.schedule(d, Ev::WorkerArrive);
                    }
                    ctx.schedule(SimDuration::from_mins(1), Ev::Replenish);
                }
            }
            Ev::PoolTick => {
                if !self.done() {
                    let mut evict_cores = self.pool.tick(ctx.now());
                    while evict_cores > 0 {
                        // Reclaim youngest workers first (LIFO — the batch
                        // system preempts the newest scavengers).
                        let victim = self.table.iter().map(|w| w.id).max();
                        let Some(victim) = victim else { break };
                        let cores = self.table.get(victim).expect("present").cores;
                        self.evict_worker(victim, false, ctx);
                        evict_cores = evict_cores.saturating_sub(cores);
                    }
                    ctx.schedule(self.pool.tick_interval(), Ev::PoolTick);
                }
            }
            Ev::WorkerArrive => {
                if !self.done() {
                    self.on_worker_arrive(ctx);
                }
            }
            Ev::WorkerEvict(w) => self.evict_worker(w, true, ctx),
            Ev::Dispatch => self.dispatch(ctx),
            Ev::SandboxDone(id) => self.on_sandbox_done(id, ctx),
            Ev::SquidWake(i) => self.on_squid_wake(i, ctx),
            Ev::FedWake => self.on_fed_wake(ctx),
            Ev::OutageWake => {
                let now = ctx.now();
                self.fed.apply_outage(now);
                self.reschedule_fed(ctx);
                if let Some(t) = self.fed.next_outage_transition(now) {
                    ctx.schedule_at(t, Ev::OutageWake);
                }
            }
            Ev::ExecDone(id) => self.on_exec_done(id, ctx),
            Ev::StageOutDone(id) => self.on_stage_out_done(id, ctx),
            Ev::CollectDone(id) => self.on_collect_done(id, ctx),
            Ev::HadoopGroupDone(g) => self.on_hadoop_group_done(g, ctx),
            Ev::SlotFree(worker) => {
                self.table.release_slot(worker);
                self.dispatch(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkflowConfig;
    use gridstore::dbs::{DatasetSpec, Dbs};

    fn small_setup(
        merge: MergeMode,
        availability: AvailabilityModel,
        outages: OutageSchedule,
        n_files: usize,
    ) -> (LobsterConfig, SimParams, Vec<Workflow>) {
        let mut cfg = LobsterConfig::default();
        cfg.merge = merge;
        cfg.workers.target_cores = 64;
        cfg.workers.cores_per_worker = 4;
        cfg.merge_target_bytes = 200_000_000;
        cfg.seed = 42;
        let mut dbs = Dbs::new();
        dbs.generate(
            "/TTJets/Spring14/AOD",
            DatasetSpec {
                n_files,
                mean_file_bytes: 500_000_000,
                events_per_lumi: 100,
                lumis_per_file: 50,
            },
            7,
        );
        let ds = dbs.query("/TTJets/Spring14/AOD").unwrap();
        let wf = Workflow::from_dataset(&cfg.workflows[0], ds);
        let params = SimParams {
            availability,
            outages,
            pool: PoolConfig {
                total_cores: 200,
                owner_mean: 20.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(96),
            ..SimParams::default()
        };
        (cfg, params, vec![wf])
    }

    #[test]
    fn small_run_completes_interleaved() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let total_tasklets = wfs[0].n_tasklets();
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(
            report.finished_at.is_some(),
            "run should finish: {report:?}"
        );
        assert!(report.tasks_completed > 0);
        assert_eq!(report.tasks_failed, 0, "dedicated workers, no outage");
        assert!(report.merges_completed > 0);
        assert!(!report.merged_files.is_empty());
        // Every tasklet's output landed inside some merged file.
        let merged_bytes: u64 = report.merged_files.iter().map(|m| m.1).sum();
        assert_eq!(merged_bytes, total_tasklets * 12_000_000);
        assert!(report.peak_concurrency > 1.0);
    }

    #[test]
    fn sequential_merge_runs_after_processing() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Sequential,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some());
        assert!(report.merges_completed > 0);
        // Sequential: no merge completes before the last analysis task.
        let analysis = report.analysis_done.sums();
        let merges = report.merge_done.sums();
        let last_analysis = analysis.iter().rposition(|&c| c > 0.0).unwrap();
        let first_merge = merges.iter().position(|&c| c > 0.0).unwrap();
        assert!(
            first_merge >= last_analysis,
            "first merge bin {first_merge} vs last analysis bin {last_analysis}"
        );
    }

    #[test]
    fn hadoop_merge_completes() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Hadoop,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some());
        assert!(report.merges_completed > 0);
        assert!(report
            .merged_files
            .iter()
            .all(|(n, _)| n.starts_with("merged_h")));
    }

    #[test]
    fn interleaved_finishes_no_later_than_sequential() {
        let run = |mode| {
            let (cfg, params, wfs) = small_setup(
                mode,
                AvailabilityModel::Dedicated,
                OutageSchedule::none(),
                40,
            );
            ClusterSim::run(cfg, params, wfs).finished_at.unwrap()
        };
        let ts = run(MergeMode::Sequential);
        let ti = run(MergeMode::Interleaved);
        assert!(
            ti <= ts,
            "interleaved {ti:?} should not lose to sequential {ts:?}"
        );
    }

    #[test]
    fn evictions_cause_retries_but_work_completes() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Exponential {
                mean: SimDuration::from_hours(3),
            },
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.evictions > 0, "3h mean lifetime must evict someone");
        assert!(report.finished_at.is_some(), "work still completes");
        assert!(report
            .worker_log
            .spans()
            .iter()
            .any(|s| s.reason == LeaveReason::Evicted));
    }

    #[test]
    fn outage_produces_failure_burst() {
        let outage = OutageSchedule::new(vec![simnet::outage::Outage::blackout(
            SimTime::ZERO + SimDuration::from_mins(70),
            SimTime::ZERO + SimDuration::from_mins(130),
        )]);
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            outage,
            120,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(
            report.tasks_failed > 0,
            "blackout must fail stage-ins: {report:?}"
        );
        assert!(
            report.timeline.failure_events().iter().any(|(t, code)| {
                *code == wqueue::task::FailureCode::StageIn
                    && t.as_hours_f64() >= 70.0 / 60.0
                    && t.as_hours_f64() <= 135.0 / 60.0
            }),
            "failures should cluster in the outage window"
        );
        assert!(report.finished_at.is_some(), "recovers after the outage");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let mk = || {
            small_setup(
                MergeMode::Interleaved,
                AvailabilityModel::notre_dame(),
                OutageSchedule::none(),
                20,
            )
        };
        let (c1, p1, w1) = mk();
        let (c2, p2, w2) = mk();
        let a = ClusterSim::run(c1, p1, w1);
        let b = ClusterSim::run(c2, p2, w2);
        assert_eq!(a.tasks_completed, b.tasks_completed);
        assert_eq!(a.tasks_failed, b.tasks_failed);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn accounting_dominated_by_cpu_when_healthy() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        let table = report.accounting.table();
        let cpu_frac = table[0].2;
        assert!(cpu_frac > 0.4, "cpu fraction {cpu_frac}");
        let total: f64 = table.iter().map(|r| r.1).sum();
        assert!((report.accounting.total() - total).abs() < 1e-9);
    }

    #[test]
    fn dashboard_credits_lobster() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report
            .dashboard
            .iter()
            .any(|(site, bytes)| site.contains("Lobster") && *bytes > 0.0));
    }

    #[test]
    fn simulation_workload_uses_chirp_not_wan() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows = vec![WorkflowConfig::simulation("gen")];
        cfg.workers.target_cores = 32;
        cfg.workers.cores_per_worker = 4;
        cfg.merge = MergeMode::Interleaved;
        cfg.merge_target_bytes = 100_000_000;
        let wf = Workflow::simulation(&cfg.workflows[0], 500, 5_000_000);
        let params = SimParams {
            availability: AvailabilityModel::Dedicated,
            horizon: SimDuration::from_hours(200),
            pool: PoolConfig {
                total_cores: 100,
                owner_mean: 0.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            ..SimParams::default()
        };
        let report = ClusterSim::run(cfg, params, vec![wf]);
        assert!(report.finished_at.is_some(), "{report:?}");
        // No WAN consumption: everything moved through Chirp.
        let lobster_bytes: f64 = report
            .dashboard
            .iter()
            .filter(|(s, _)| s.contains("Lobster"))
            .map(|(_, b)| *b)
            .sum();
        assert_eq!(lobster_bytes, 0.0);
    }

    #[test]
    fn adaptive_sizer_stays_in_bounds() {
        let (cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Exponential {
                mean: SimDuration::from_hours(2),
            },
            OutageSchedule::none(),
            20,
        );
        params.adaptive = true;
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some());
        assert!((1..=60).contains(&report.final_task_size));
    }
}
