//! The full-cluster discrete-event driver.
//!
//! This composes every substrate into the system of Figure 1 and runs the
//! production scenarios of §6: workers are provisioned through an
//! opportunistic batch pool and evicted per an availability model; tasks
//! flow master → foreman → worker; each attempt walks the wrapper
//! segments (sandbox stage-in, CVMFS-via-squid environment setup, data
//! stage-in/streaming, execution, Chirp stage-out, result collection);
//! and the monitor ingests every attempt.
//!
//! One [`ClusterSim`] run produces a [`RunReport`] holding the Figure 8
//! accounting, the Figure 10/11 time lines, the Figure 9 dashboard and
//! the Figure 2 eviction log — the benchmark binaries are thin wrappers
//! around this type.

use crate::access::{AccessTiming, DataAccessMode};
use crate::adaptive::{AdaptiveConfig, AdaptiveSizer};
use crate::config::{LobsterConfig, WorkloadKind};
use crate::db::LobsterDb;
use crate::fault::{FaultPlan, FaultTarget};
use crate::merge::{MergeMode, MergePlanner};
use crate::monitor::{Accounting, Advisor, AdvisorConfig, SegmentHistograms, Timeline};
use crate::workflow::Workflow;
use crate::wrapper::{ReportBuilder, Segment, SegmentReport};
use batchsim::availability::AvailabilityModel;
use batchsim::factory::{FactoryConfig, WorkerFactory};
use batchsim::log::{LeaveReason, WorkerLog};
use batchsim::pool::{OpportunisticPool, PoolConfig};
use cvmfssim::catalog::ReleaseCatalog;
use cvmfssim::squid::{Squid, SquidConfig, TimedOut};
use gridstore::chirp::{ChirpConfig, ChirpDown, ChirpServer};
use gridstore::xrootd::{Federation, FederationConfig};
use simkit::fault::{CrashPoint, CrashSite};
use simkit::prelude::*;
use simkit::queue::Grant;
use simkit::stats::TimeSeries;
use simnet::link::FlowId;
use simnet::outage::OutageSchedule;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;
use wqueue::sim::{DispatchBuffer, WorkerTable};
use wqueue::task::{Category, DeadLetter, FailureCode, TaskId};

/// Simulation-only parameters on top of [`LobsterConfig`].
#[derive(Clone, Debug)]
pub struct SimParams {
    /// Worker availability (eviction) model.
    pub availability: AvailabilityModel,
    /// Opportunistic pool behaviour (owner demand).
    pub pool: PoolConfig,
    /// Wide-area outage schedule.
    pub outages: OutageSchedule,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Sandbox transfer service time per dispatch (through a foreman).
    pub sandbox_service: SimDuration,
    /// Concurrent sandbox transfers per foreman.
    pub foreman_capacity: usize,
    /// Result-collection time per task.
    pub wq_collect: SimDuration,
    /// Timeline bin width.
    pub timeline_bin: SimDuration,
    /// Merge-task CPU per GB of merged data.
    pub merge_cpu_per_gb: SimDuration,
    /// Hadoop merge: parallel reducers.
    pub hadoop_reducers: usize,
    /// Hadoop merge: per-reducer throughput (bytes/second).
    pub hadoop_rate: f64,
    /// Enable the §8 adaptive task sizing controller.
    pub adaptive: bool,
    /// Controller parameters (match `per_task_overhead` to the actual
    /// per-task overhead of the environment, or Young's formula will
    /// target the wrong task length).
    pub adaptive_cfg: AdaptiveConfig,
    /// Per-stream WAN cap (bytes/second).
    pub wan_stream_cap: f64,
    /// Squid proxy sizing.
    pub squid: SquidConfig,
    /// Injected infrastructure faults (squid / Chirp / federation
    /// degradation windows), applied on top of the outage schedule.
    pub faults: FaultPlan,
    /// Event-queue backend. `Calendar` is the production default;
    /// `ReferenceHeap` keeps the original binary-heap engine for the
    /// differential trace tests.
    pub engine: EngineKind,
    /// Federation consumer label for this master. Historically a single
    /// hard-coded constant ([`ClusterSim::CONSUMER`]) — a latent
    /// single-master assumption: with several tenants on one grid, every
    /// transfer dashboard row was credited to the same consumer. `None`
    /// keeps the classic label.
    pub tenant_label: Option<String>,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            availability: AvailabilityModel::notre_dame(),
            pool: PoolConfig::default(),
            outages: OutageSchedule::none(),
            horizon: SimDuration::from_hours(48),
            sandbox_service: SimDuration::from_secs(15),
            foreman_capacity: 50,
            wq_collect: SimDuration::from_secs(10),
            timeline_bin: SimDuration::from_mins(30),
            merge_cpu_per_gb: SimDuration::from_mins(1),
            hadoop_reducers: 20,
            hadoop_rate: 100e6,
            adaptive: false,
            adaptive_cfg: AdaptiveConfig::default(),
            wan_stream_cap: 10e6,
            squid: SquidConfig::default(),
            faults: FaultPlan::none(),
            engine: EngineKind::default(),
            tenant_label: None,
        }
    }
}

/// Driver events.
#[derive(Debug)]
pub enum Ev {
    /// Kick-off: decompose workflows, start provisioning chains.
    Start,
    /// Owner-demand tick.
    PoolTick,
    /// Factory replenishment tick.
    Replenish,
    /// A submitted worker's provisioning delay elapsed.
    WorkerArrive,
    /// A worker's availability interval expired.
    WorkerEvict(u64),
    /// Try to assign buffered tasks to free slots.
    Dispatch,
    /// Sandbox transfer finished; begin environment setup. Carries the
    /// attempt number so events from superseded attempts are ignored.
    SandboxDone(TaskId, u32),
    /// Several sandbox transfers granted at the same instant by one
    /// dispatch round finish together: one event carries the whole batch
    /// (in grant order), instead of one event per task. Handling order is
    /// identical to consecutive [`Ev::SandboxDone`] events — the payloads
    /// were scheduled back-to-back, so nothing could interleave — and the
    /// drained Vec is recycled through the dispatch batch pool.
    SandboxBatch(Vec<(TaskId, u32)>),
    /// A squid may have finished serving flows.
    SquidWake(usize),
    /// The federation may have finished transfers.
    FedWake,
    /// An outage window starts or ends.
    OutageWake,
    /// An injected fault window starts or ends.
    FaultWake,
    /// A Chirp-staged input fully landed; execution starts.
    DataStaged(TaskId, u32),
    /// CPU (and streaming input) finished; begin stage-out.
    ExecDone(TaskId, u32),
    /// Chirp upload finished; begin result collection.
    StageOutDone(TaskId, u32),
    /// Result reached the master; the task is complete.
    CollectDone(TaskId, u32),
    /// One Hadoop merge group finished.
    HadoopGroupDone(usize),
    /// A slot held back after an environment-setup failure frees up.
    SlotFree(u64),
    /// A segment watchdog deadline expired (sequence guards staleness).
    Deadline(TaskId, u64),
    /// A backed-off retry re-enters the ready queue.
    Requeue(TaskId),
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase {
    Queued,
    Sandbox,
    EnvSetup,
    /// Staged input transfer in flight (blocks execution).
    Data,
    Exec,
    StageOut,
    Collect,
}

struct TaskInfo {
    wf: usize,
    category: Category,
    input_bytes: u64,
    output_bytes: u64,
    cpu: SimDuration,
    phase: Phase,
    worker: Option<u64>,
    builder: Option<ReportBuilder>,
    enqueued_at: SimTime,
    phase_started: SimTime,
    env_flow: Option<(usize, FlowId)>,
    data_flow: Option<FlowId>,
    /// Outputs a merge task combines (None for analysis tasks).
    merge_inputs: Option<Vec<(TaskId, u64)>>,
    attempt: u32,
    /// Armed segment watchdog: (sequence, guarded segment, deadline event).
    watchdog: Option<(u64, Segment, EventId)>,
}

/// In-flight task ledger. Analysis ids are handed out densely from 0,
/// so they index a direct slab; merge ids (>= [`crate::db::MERGE_ID_BASE`])
/// are sparse and few at a time, so they stay in an ordered map. Rows
/// are boxed so a vacant slot costs one pointer, not a whole row.
struct TaskTable {
    analysis: Vec<Option<Box<TaskInfo>>>,
    merge: BTreeMap<TaskId, Box<TaskInfo>>,
    live: usize,
}

impl TaskTable {
    fn new() -> Self {
        TaskTable {
            analysis: Vec::new(),
            merge: BTreeMap::new(),
            live: 0,
        }
    }

    fn get(&self, id: TaskId) -> Option<&TaskInfo> {
        if id.0 < crate::db::MERGE_ID_BASE {
            self.analysis.get(usize::try_from(id.0).ok()?)?.as_deref()
        } else {
            self.merge.get(&id).map(|b| &**b)
        }
    }

    fn get_mut(&mut self, id: TaskId) -> Option<&mut TaskInfo> {
        if id.0 < crate::db::MERGE_ID_BASE {
            self.analysis
                .get_mut(usize::try_from(id.0).ok()?)?
                .as_deref_mut()
        } else {
            self.merge.get_mut(&id).map(|b| &mut **b)
        }
    }

    fn insert(&mut self, id: TaskId, t: TaskInfo) {
        let prev = if id.0 < crate::db::MERGE_ID_BASE {
            let ix = usize::try_from(id.0).expect("analysis id fits usize");
            if ix >= self.analysis.len() {
                self.analysis.resize_with(ix + 1, || None);
            }
            self.analysis[ix].replace(Box::new(t))
        } else {
            self.merge.insert(id, Box::new(t))
        };
        debug_assert!(prev.is_none(), "task {id:?} inserted while in flight");
        self.live += 1;
    }

    fn remove(&mut self, id: TaskId) -> Option<TaskInfo> {
        let t = if id.0 < crate::db::MERGE_ID_BASE {
            self.analysis.get_mut(usize::try_from(id.0).ok()?)?.take()
        } else {
            self.merge.remove(&id)
        };
        if t.is_some() {
            self.live -= 1;
        }
        t.map(|b| *b)
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// The harvestable outcome of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Figure 8 accounting.
    pub accounting: Accounting,
    /// Figure 10/11 time lines (all tasks).
    pub timeline: Timeline,
    /// Analysis-task completions per bin (Figure 7 white bars).
    pub analysis_done: TimeSeries,
    /// Merge completions per bin (Figure 7 gray bars).
    pub merge_done: TimeSeries,
    /// §5 advisor diagnosis.
    pub advice: Vec<crate::monitor::Advice>,
    /// Advisor input signals: `(signal, mean minutes, samples)` where the
    /// denominator counts only attempts that measured the signal.
    pub advisor_signals: Vec<(&'static str, f64, u64)>,
    /// §5 per-segment duration histograms.
    pub segment_histograms: SegmentHistograms,
    /// Figure 9 dashboard rows (consumer, bytes).
    pub dashboard: Vec<(String, f64)>,
    /// Worker join/leave log (Figure 2 input).
    pub worker_log: WorkerLog,
    /// Successful analysis attempts.
    pub tasks_completed: u64,
    /// Failed attempts (all causes, incl. evictions).
    pub tasks_failed: u64,
    /// Attempts lost to eviction.
    pub evictions: u64,
    /// Merge tasks (or Hadoop groups) completed.
    pub merges_completed: u64,
    /// Merged files written, `(name, bytes)`.
    pub merged_files: Vec<(String, u64)>,
    /// Instant everything (processing + merging) finished, if it did.
    pub finished_at: Option<SimTime>,
    /// Simulated end of the run.
    pub ended_at: SimTime,
    /// Peak concurrent tasks observed.
    pub peak_concurrency: f64,
    /// Final task size chosen by the adaptive controller (if enabled).
    pub final_task_size: u32,
    /// Tasks withdrawn after exhausting their retry budget.
    pub dead_letters: Vec<DeadLetter>,
    /// Engine events delivered over the run (throughput diagnostics).
    pub events_delivered: u64,
}

/// A live status sample, pollable mid-run through the ops plane: the
/// operator's view of a running master without stopping it.
#[derive(Clone, Debug)]
pub struct OpsStatus {
    /// Simulated instant of the sample.
    pub now: SimTime,
    /// Engine events delivered so far.
    pub events_delivered: u64,
    /// Tasks currently tracked by the master (queued + in flight).
    pub live_tasks: u64,
    /// Journaled run counters.
    pub counters: crate::db::Counters,
    /// Figure 8 accounting so far.
    pub accounting: Accounting,
    /// Advisor input signals so far: `(signal, mean minutes, samples)`.
    pub advisor_signals: Vec<(&'static str, f64, u64)>,
    /// §5 diagnosis at this instant.
    pub advice: Vec<crate::monitor::Advice>,
    /// Dead-lettered tasks so far.
    pub dead_letters: u64,
}

/// What the controller wants after seeing an [`OpsStatus`] sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpsRequest {
    /// Keep running.
    Continue,
    /// Stop here: drain the commit window, take a durable checkpoint
    /// (WAL v3 snapshot + compaction), and return.
    Pause,
}

/// Outcome of a run driven through the ops plane.
#[derive(Debug)]
pub enum OpsOutcome {
    /// The run drained (or hit the horizon); the full report.
    Completed(Box<RunReport>),
    /// The controller paused the run after a durable checkpoint. The
    /// journal at the run's path holds everything needed for
    /// [`ClusterSim::resume_run`] (or another ops-plane resume) to
    /// continue; the status is the last sample before the pause.
    Paused(OpsStatus),
}

/// The cluster simulation model.
pub struct ClusterSim {
    cfg: LobsterConfig,
    params: SimParams,
    rng: SimRng,
    db: LobsterDb,
    workflows: Vec<Workflow>,
    tasks: TaskTable,
    buffer: DispatchBuffer,
    /// Merge tasks awaiting dispatch (kept out of the analysis buffer so
    /// bookkeeping stays by category).
    merge_queue: VecDeque<TaskId>,
    table: WorkerTable,
    factory: WorkerFactory,
    pool: OpportunisticPool,
    log: WorkerLog,
    worker_evict_ev: BTreeMap<u64, EventId>,
    /// Tasks running per worker, indexed by dense worker id (push order;
    /// eviction sorts the survivors so processing stays id-ordered).
    running_on: Vec<Vec<TaskId>>,
    /// Total analysis tasklets across all workflows, fixed at start-up
    /// (the merge gate divides by it on every completion).
    analysis_units: u64,
    foremen: Vec<Server>,
    squids: Vec<Squid>,
    squid_wake: Vec<Option<EventId>>,
    squid_flows: Vec<BTreeMap<FlowId, TaskId>>,
    /// Per-squid: cold-fill flow → worker (alien-cache shared fills).
    squid_fill_flows: Vec<BTreeMap<FlowId, u64>>,
    /// Worker → (squid, fill flow, tasks waiting on the fill).
    env_fill: BTreeMap<u64, (usize, FlowId, Vec<TaskId>)>,
    fed: Federation,
    fed_wake: Option<EventId>,
    fed_flows: BTreeMap<FlowId, TaskId>,
    chirp: ChirpServer,
    catalog: ReleaseCatalog,
    planner: MergePlanner,
    /// Finished outputs not yet claimed by any merge group, in finish
    /// order (incremental — avoids rescanning the DB per completion).
    pending_outputs: VecDeque<(TaskId, u64)>,
    pending_bytes: u64,
    /// Outputs not yet inside a *completed* merged file.
    unmerged_count: u64,
    hadoop_groups: Vec<(Vec<(TaskId, u64)>, u64)>,
    hadoop_started: bool,
    sequential_planned: bool,
    // Monitoring. Accounting, run counters and the dead-letter ledger
    // live in the db (journaled, so they survive a master crash); only
    // the diagnostic time lines stay driver-side.
    timeline: Timeline,
    advisor: Advisor,
    seg_hist: SegmentHistograms,
    analysis_done: TimeSeries,
    merge_done: TimeSeries,
    finished_at: Option<SimTime>,
    /// One adaptive sizing controller per workflow.
    sizers: Vec<AdaptiveSizer>,
    /// Monotone sequence distinguishing watchdog armings.
    watchdog_seq: u64,
    /// Per-worker consecutive environment-setup failures (slot-hold
    /// backoff input; reset on the next env success there).
    env_fail_streak: BTreeMap<u64, u32>,
    /// Reused buffer for factory replenishment delays (one call per
    /// simulated minute; no per-tick Vec).
    scratch_delays: Vec<SimDuration>,
    /// Reused buffer for link-completion draining (squid and federation
    /// wakes run once per predicted completion; no per-wake Vec).
    scratch_flows: Vec<FlowId>,
    /// Recycled payload buffers for batched same-instant sandbox grants:
    /// a drained [`Ev::SandboxBatch`] returns its Vec here for the next
    /// dispatch round to refill.
    batch_pool: Vec<Vec<(TaskId, u32)>>,
    /// Federation consumer label (per-tenant under multi-tenancy).
    consumer: String,
    /// Shared-site cache warmth per dataset, in `[0, 1]`: the fraction of
    /// a stage-in that the shared squids / alien caches can serve without
    /// crossing the WAN, because *another* tenant already pulled it. Set
    /// by the multi-tenant coordinator between rounds; empty (the
    /// single-master default) leaves every transfer fully cold.
    dataset_warmth: BTreeMap<String, f64>,
    /// WAN bytes this master pulled per dataset (cold-side accounting the
    /// coordinator reads to advance the shared cache model).
    wan_by_dataset: BTreeMap<String, u64>,
}

impl ClusterSim {
    /// The consumer label used for federation accounting.
    pub const CONSUMER: &'static str = "T3_US_NotreDame (Lobster)";

    /// Build a simulation from a Lobster configuration, sim parameters and
    /// the workflows' decompositions (one per `cfg.workflows` entry,
    /// produced by [`Workflow::from_dataset`] / [`Workflow::simulation`]).
    /// State lives in an in-memory db — nothing survives the process.
    pub fn new(cfg: LobsterConfig, params: SimParams, workflows: Vec<Workflow>) -> Self {
        let mut db = LobsterDb::in_memory();
        for wf in &workflows {
            db.register_workflow(&wf.name, wf.n_tasklets());
        }
        Self::with_db(cfg, params, workflows, db)
    }

    /// Build a *fresh* simulation whose db journals every transition to
    /// `path`, compacting per `cfg.journal`. Fails with `AlreadyExists`
    /// when the journal already holds run state — use [`ClusterSim::resume`]
    /// to continue such a run.
    pub fn durable(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
    ) -> io::Result<Self> {
        let mut db = LobsterDb::open_with_policy(path, &cfg.journal)?;
        if db.workflow_count() > 0 || db.task_count() > 0 {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "journal already holds run state; use ClusterSim::resume",
            ));
        }
        for wf in &workflows {
            db.register_workflow(&wf.name, wf.n_tasklets());
        }
        Ok(Self::with_db(cfg, params, workflows, db))
    }

    /// Restart a crashed run from its journal at `path`: replay the
    /// durable state, mark tasks that were in flight at the crash as
    /// lost (requeueing them through the retry policy), re-issue planned
    /// merges, and rebuild the merge planner's pending buffer so every
    /// output still lands in exactly one merged file.
    ///
    /// The simulated clock restarts at zero and the rng stream is
    /// re-seeded, so a resumed run's *timing* diverges from the
    /// uninterrupted run — but its accounting converges: the same
    /// tasklets get done, the same bytes get merged.
    pub fn resume(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
    ) -> io::Result<Self> {
        let mut db = LobsterDb::open_with_policy(path, &cfg.journal)?;
        for wf in &workflows {
            if !db.has_workflow(&wf.name) {
                db.register_workflow(&wf.name, wf.n_tasklets());
            } else if db.total_tasklets(&wf.name) != wf.n_tasklets() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "workflow {} has {} tasklets in the journal but {} in the config",
                        wf.name,
                        db.total_tasklets(&wf.name),
                        wf.n_tasklets()
                    ),
                ));
            }
        }
        let mut sim = Self::with_db(cfg, params, workflows, db);
        sim.reconcile_recovered();
        Ok(sim)
    }

    /// Shared constructor over an already-populated db.
    fn with_db(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        db: LobsterDb,
    ) -> Self {
        assert_eq!(
            cfg.workflows.len(),
            workflows.len(),
            "one decomposition per workflow"
        );
        assert!(
            cfg.validate().is_empty(),
            "invalid config: {:?}",
            cfg.validate()
        );
        let rng = SimRng::new(cfg.seed);
        let n_workers = (cfg.workers.target_cores / cfg.workers.cores_per_worker).max(1);
        let factory = WorkerFactory::new(FactoryConfig {
            target_workers: n_workers,
            cores_per_worker: cfg.workers.cores_per_worker,
            mean_submit_delay: SimDuration::from_mins(2),
            burst: 2_000,
        });
        let pool = OpportunisticPool::new(params.pool, rng.split(1));
        let n_squids = cfg.infra.n_squids as usize;
        if let Err(e) = params.faults.validate(n_squids) {
            // A squid fault aimed past the deployed set would otherwise be
            // silently inert for the whole run, so reject at construction.
            // simlint::allow(no-panic-in-lib): configuration error at sim construction
            panic!("invalid fault plan: {e}");
        }
        let squids: Vec<Squid> = (0..n_squids).map(|_| Squid::new(params.squid)).collect();
        let fed = Federation::new(FederationConfig {
            wan_bandwidth: simnet::units::gbit_per_s(cfg.infra.wan_gbits),
            per_stream_cap: params.wan_stream_cap,
            outages: params.outages.clone(),
        });
        let chirp = ChirpServer::new(ChirpConfig {
            max_connections: cfg.infra.chirp_connections as usize,
            ..ChirpConfig::default()
        });
        let foremen: Vec<Server> = (0..cfg.infra.n_foremen.max(1) as usize)
            .map(|_| Server::new(params.foreman_capacity))
            .collect();
        let planner = MergePlanner::new(cfg.merge_target_bytes);
        let timeline = Timeline::new(params.timeline_bin);
        let analysis_done = TimeSeries::new(params.timeline_bin);
        let merge_done = TimeSeries::new(params.timeline_bin);
        // One controller per workflow, each seeded from its own task size
        // (workflows may mix very different tasklet densities).
        let sizers: Vec<AdaptiveSizer> = cfg
            .workflows
            .iter()
            .map(|w| AdaptiveSizer::new(params.adaptive_cfg, w.tasklets_per_task))
            .collect();
        let catalog = ReleaseCatalog::cmssw_default(cfg.seed ^ 0xCAFE);
        let analysis_units: u64 = workflows.iter().map(|w| w.n_tasklets()).sum();
        let consumer = params
            .tenant_label
            .clone()
            .unwrap_or_else(|| Self::CONSUMER.to_string());
        ClusterSim {
            rng: rng.split(0),
            cfg,
            params,
            db,
            workflows,
            tasks: TaskTable::new(),
            buffer: DispatchBuffer::new(),
            merge_queue: VecDeque::new(),
            table: WorkerTable::new(),
            factory,
            pool,
            log: WorkerLog::new(),
            worker_evict_ev: BTreeMap::new(),
            running_on: Vec::new(),
            analysis_units,
            foremen,
            squid_wake: vec![None; n_squids],
            squid_flows: (0..n_squids).map(|_| BTreeMap::new()).collect(),
            squid_fill_flows: (0..n_squids).map(|_| BTreeMap::new()).collect(),
            env_fill: BTreeMap::new(),
            squids,
            fed,
            fed_wake: None,
            fed_flows: BTreeMap::new(),
            chirp,
            catalog,
            planner,
            pending_outputs: VecDeque::new(),
            pending_bytes: 0,
            unmerged_count: 0,
            hadoop_groups: Vec::new(),
            hadoop_started: false,
            sequential_planned: false,
            timeline,
            advisor: Advisor::new(),
            seg_hist: SegmentHistograms::new(),
            analysis_done,
            merge_done,
            finished_at: None,
            sizers,
            watchdog_seq: 0,
            env_fail_streak: BTreeMap::new(),
            scratch_delays: Vec::new(),
            scratch_flows: Vec::new(),
            batch_pool: Vec::new(),
            consumer,
            dataset_warmth: BTreeMap::new(),
            wan_by_dataset: BTreeMap::new(),
        }
    }

    /// Bring the driver's in-memory scheduling state back in line with
    /// the recovered db after [`ClusterSim::resume`].
    fn reconcile_recovered(&mut self) {
        // Attempt reports replayed off the journal tail refill the
        // diagnostic monitors (reports folded into a snapshot frame are
        // gone from the time lines; their accounting survives in the db).
        for report in self.db.take_replayed_attempts() {
            self.timeline.record(&report);
            self.advisor.record(&report);
            self.seg_hist.record(&report);
            if report.is_success() {
                if report.category == Category::Merge {
                    self.merge_done.mark(report.finished_at);
                } else {
                    self.analysis_done.mark(report.finished_at);
                }
            }
        }
        // Tasks created but never dispatched (the crash landed between
        // creation and dispatch) go straight back into the dispatch
        // buffer: their tasklets are already claimed off the workflow
        // cursor, so nothing else will re-cover them.
        for id in self.db.ready_tasks() {
            self.restore_analysis_task(id);
        }
        // Tasks in flight when the master died never reported back; the
        // restarted master treats them like evicted attempts.
        for id in self.db.running_tasks() {
            if self.cfg.retry.max_attempts.is_none() {
                // Unbounded policy: return the tasklets to the pool and
                // let fresh tasks re-cover them.
                if let Err(e) = self.db.mark_lost(id) {
                    debug_assert!(false, "recovered task not requeueable: {e}");
                }
                continue;
            }
            // Bounded budget: keep the task identity so the dispatch
            // count keeps charging against the budget.
            self.restore_analysis_task(id);
        }
        // Planned-but-incomplete merge groups are re-issued verbatim
        // (same id, same inputs) so merging stays exactly-once.
        for (id, inputs) in self.db.open_merge_groups() {
            let bytes: u64 = inputs.iter().map(|i| i.1).sum();
            let cpu = self.params.merge_cpu_per_gb.mul_f64(bytes as f64 / 1e9);
            self.tasks.insert(
                id,
                TaskInfo {
                    wf: 0,
                    category: Category::Merge,
                    input_bytes: bytes,
                    output_bytes: bytes,
                    cpu,
                    phase: Phase::Queued,
                    worker: None,
                    builder: None,
                    enqueued_at: SimTime::ZERO,
                    phase_started: SimTime::ZERO,
                    env_flow: None,
                    data_flow: None,
                    merge_inputs: Some(inputs),
                    attempt: 0,
                    watchdog: None,
                },
            );
            self.merge_queue.push_back(id);
        }
        // Outputs not yet claimed by any group refill the planner's
        // pending buffer in their original finish order.
        self.pending_outputs = self.db.done_order_unmerged().into();
        self.pending_bytes = self.pending_outputs.iter().map(|o| o.1).sum();
        self.unmerged_count = self.db.unmerged_outputs().len() as u64;
    }

    /// Rebuild the in-memory [`TaskInfo`] for a recovered analysis task
    /// and return it to the dispatch buffer. The CPU draw is re-sampled
    /// from the restarted rng stream (attempt timing is not journaled),
    /// which perturbs timing but not coverage.
    fn restore_analysis_task(&mut self, id: TaskId) {
        let Some(wf_idx) = self
            .db
            .task_workflow(id)
            .and_then(|name| self.workflows.iter().position(|w| w.name == name))
        else {
            return;
        };
        let n = self.db.task_tasklets(id).map_or(0, |t| t.len()) as u32;
        let wf = &self.workflows[wf_idx];
        let cpu = wf.sample_task_cpu(n, &mut self.rng);
        self.tasks.insert(
            id,
            TaskInfo {
                wf: wf_idx,
                category: Category::Analysis,
                input_bytes: wf.task_input_bytes(n),
                output_bytes: wf.task_output_bytes(n),
                cpu,
                phase: Phase::Queued,
                worker: None,
                builder: None,
                enqueued_at: SimTime::ZERO,
                phase_started: SimTime::ZERO,
                env_flow: None,
                data_flow: None,
                merge_inputs: None,
                attempt: self.db.attempts(id),
                watchdog: None,
            },
        );
        self.buffer.push(id);
    }

    /// Run to the horizon and harvest the report.
    pub fn run(cfg: LobsterConfig, params: SimParams, workflows: Vec<Workflow>) -> RunReport {
        Self::drive(Self::new(cfg, params, workflows))
    }

    /// Run a fresh durable (journaled) simulation to the horizon.
    pub fn run_durable(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
    ) -> io::Result<RunReport> {
        Ok(Self::drive(Self::durable(cfg, params, workflows, path)?))
    }

    /// Resume a crashed durable run from its journal and run it to the
    /// horizon.
    pub fn resume_run(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
    ) -> io::Result<RunReport> {
        Ok(Self::drive(Self::resume(cfg, params, workflows, path)?))
    }

    /// Run a fresh durable simulation but kill the master at `crash`:
    /// after that many delivered events, all in-memory state is dropped
    /// on the floor and `Ok(None)` returned — only the journal survives,
    /// for [`ClusterSim::resume_run`] to pick up. When the run drains (or
    /// hits the horizon) before the crash point, the completed report is
    /// returned instead.
    pub fn run_durable_until_crash(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
        crash: CrashPoint,
    ) -> io::Result<Option<RunReport>> {
        Ok(Self::drive_until_crash(
            Self::durable(cfg, params, workflows, path)?,
            crash,
        ))
    }

    /// Resume a crashed durable run from its journal, but kill the master
    /// *again* at `crash` — the double-crash scenario: only the journal
    /// survives for yet another [`ClusterSim::resume_run`]. Returns
    /// `Ok(None)` when the crash landed mid-flight, or the completed
    /// report when the run drained first.
    pub fn resume_run_until_crash(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
        crash: CrashPoint,
    ) -> io::Result<Option<RunReport>> {
        Ok(Self::drive_until_crash(
            Self::resume(cfg, params, workflows, path)?,
            crash,
        ))
    }

    /// Run a fresh durable simulation under ops-plane control: every
    /// `poll_every_events` delivered events the controller sees an
    /// [`OpsStatus`] sample (accounting, counters, live advice) and
    /// decides to continue or pause. A pause drains the group-commit
    /// window and takes a durable checkpoint through the WAL v3
    /// snapshot+compaction path, so the journal alone can resume the
    /// run later.
    pub fn run_durable_with_ops(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
        poll_every_events: u64,
        control: impl FnMut(&OpsStatus) -> OpsRequest,
    ) -> io::Result<OpsOutcome> {
        Self::drive_with_ops(
            Self::durable(cfg, params, workflows, path)?,
            poll_every_events,
            control,
        )
    }

    /// Resume a paused (or crashed) durable run under ops-plane control;
    /// same polling contract as [`ClusterSim::run_durable_with_ops`].
    pub fn resume_run_with_ops(
        cfg: LobsterConfig,
        params: SimParams,
        workflows: Vec<Workflow>,
        path: impl AsRef<Path>,
        poll_every_events: u64,
        control: impl FnMut(&OpsStatus) -> OpsRequest,
    ) -> io::Result<OpsOutcome> {
        Self::drive_with_ops(
            Self::resume(cfg, params, workflows, path)?,
            poll_every_events,
            control,
        )
    }

    /// Status sample for the ops plane.
    fn ops_status(&self, now: SimTime, events_delivered: u64) -> OpsStatus {
        OpsStatus {
            now,
            events_delivered,
            live_tasks: self.tasks.live as u64,
            counters: self.db.counters(),
            accounting: self.db.accounting().clone(),
            advisor_signals: self.advisor.signal_means(),
            advice: self.advisor.diagnose(&AdvisorConfig::default()),
            dead_letters: self.db.dead_letters().len() as u64,
        }
    }

    fn drive_with_ops(
        sim: ClusterSim,
        poll_every_events: u64,
        mut control: impl FnMut(&OpsStatus) -> OpsRequest,
    ) -> io::Result<OpsOutcome> {
        let poll = poll_every_events.max(1);
        let horizon = sim.params.horizon;
        let deadline = SimTime::ZERO + horizon;
        let kind = sim.params.engine;
        let mut engine = Engine::with_kind(sim, kind);
        engine.prime(SimDuration::ZERO, Ev::Start);
        loop {
            let now = engine.run_until_events(deadline, poll);
            if engine.ctx().peek_time().is_none_or(|t| t > deadline) {
                // Quiescent (or past the horizon): the run is over.
                let events_delivered = engine.ctx().delivered();
                let report = engine.into_model().into_report(now, events_delivered);
                return Ok(OpsOutcome::Completed(Box::new(report)));
            }
            let events_delivered = engine.ctx().delivered();
            let status = engine.model().ops_status(now, events_delivered);
            if control(&status) == OpsRequest::Pause {
                let mut model = engine.into_model();
                // Durable checkpoint: everything journaled so far becomes
                // a snapshot + empty tail, exactly the WAL v3 recovery
                // fast path.
                model.db.flush();
                model.db.compact()?;
                return Ok(OpsOutcome::Paused(status));
            }
        }
    }

    fn drive_until_crash(sim: ClusterSim, crash: CrashPoint) -> Option<RunReport> {
        let horizon = sim.params.horizon;
        let deadline = SimTime::ZERO + horizon;
        let kind = sim.params.engine;
        let mut engine = Engine::with_kind(sim, kind);
        engine.prime(SimDuration::ZERO, Ev::Start);
        let ended_at = engine.run_until_events(deadline, crash.after_events);
        // Events still pending inside the deadline mean the budget — not
        // quiescence — stopped the run: the crash landed mid-flight. How
        // much of the open group-commit window survives is the crash
        // site's call: a boundary crash flushes it, an in-window crash
        // drops it with the process.
        if engine.ctx().peek_time().is_some_and(|t| t <= deadline) {
            let mut model = engine.into_model();
            match crash.site {
                CrashSite::CommitBoundary => model.db.flush(),
                CrashSite::InsideCommitWindow => model.db.crash(),
            }
            return None;
        }
        let events_delivered = engine.ctx().delivered();
        Some(engine.into_model().into_report(ended_at, events_delivered))
    }

    fn drive(sim: ClusterSim) -> RunReport {
        let horizon = sim.params.horizon;
        let kind = sim.params.engine;
        let mut engine = Engine::with_kind(sim, kind);
        engine.prime(SimDuration::ZERO, Ev::Start);
        let ended_at = engine.run_until(SimTime::ZERO + horizon);
        let events_delivered = engine.ctx().delivered();
        engine.into_model().into_report(ended_at, events_delivered)
    }

    /// Fold the final model state into a [`RunReport`]. Public so external
    /// harnesses that drive the [`Engine`] themselves (the multi-tenant
    /// coordinator steps several engines in lockstep) can harvest reports.
    pub fn into_report(mut self, ended_at: SimTime, events_delivered: u64) -> RunReport {
        // A completed run is a durability boundary: drain any open
        // group-commit window before reporting.
        self.db.flush();
        let concurrency = self.timeline.concurrency();
        let peak = concurrency.iter().copied().fold(0.0, f64::max);
        let counters = self.db.counters();
        RunReport {
            advice: self.advisor.diagnose(&AdvisorConfig::default()),
            advisor_signals: self.advisor.signal_means(),
            segment_histograms: self.seg_hist,
            accounting: self.db.accounting().clone(),
            timeline: self.timeline,
            analysis_done: self.analysis_done,
            merge_done: self.merge_done,
            dashboard: self.fed.dashboard(),
            worker_log: self.log,
            tasks_completed: counters.tasks_completed,
            tasks_failed: counters.tasks_failed,
            evictions: counters.evictions,
            merges_completed: counters.merges_completed,
            merged_files: self.db.merged_files(),
            finished_at: self.finished_at,
            ended_at,
            peak_concurrency: peak,
            final_task_size: self.sizers[0].current(),
            dead_letters: self.db.dead_letters().to_vec(),
            events_delivered,
        }
    }

    fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    // ----- multi-tenant coordination surface --------------------------------
    //
    // A multi-tenant coordinator steps several `ClusterSim` engines over one
    // shared pool. Between rounds it reads demand and WAN accounting here,
    // and writes back the arbiter's core cap and the shared-cache warmth.

    /// Bound the cores this master's pool slice may hold (the arbiter's
    /// fair-share grant). Overage is preempted on the next pool tick.
    pub fn set_core_cap(&mut self, cap: u32) {
        self.pool.set_share_cap(Some(cap));
    }

    /// Cores currently held by this master's workers.
    pub fn held_cores(&self) -> u32 {
        self.pool.ours()
    }

    /// Tasklets not yet done or dead-lettered — the demand signal the
    /// fair-share arbiter sees. Derived purely from journaled state so a
    /// crash + resume reproduces the same value.
    pub fn work_remaining(&self) -> u64 {
        self.analysis_units
            .saturating_sub(self.db.total_done_tasklets())
            .saturating_sub(self.db.total_dead_tasklets())
    }

    /// Whether the whole campaign (including merges) has completed.
    pub fn is_finished(&self) -> bool {
        self.done()
    }

    /// Outputs not yet folded into a merged file — the merge-side demand
    /// signal. Covers planned, queued and in-flight merges (the count
    /// only drops when a merge *completes*), so an arbiter that would
    /// otherwise see zero analysis work left still grants the cores the
    /// merge tail needs.
    pub fn merge_backlog(&self) -> u64 {
        self.unmerged_count
    }

    /// Set the shared-site cache warmth for `dataset` in `[0, 1]`: the
    /// fraction of future stage-ins served without crossing the WAN.
    pub fn set_dataset_warmth(&mut self, dataset: &str, frac: f64) {
        self.dataset_warmth
            .insert(dataset.to_string(), frac.clamp(0.0, 1.0));
    }

    /// WAN bytes pulled so far, per dataset (cold-side accounting).
    pub fn wan_bytes_by_dataset(&self) -> &BTreeMap<String, u64> {
        &self.wan_by_dataset
    }

    /// The federation consumer label this master reports under.
    pub fn consumer_label(&self) -> &str {
        &self.consumer
    }

    /// Simulate a process crash for an externally-driven engine: drop the
    /// open group-commit window without flushing, abandoning the model —
    /// the in-window crash site of [`ClusterSim::run_durable_until_crash`],
    /// exposed so a multi-tenant coordinator can kill one master mid-round.
    pub fn crash_now(mut self) {
        self.db.crash();
    }

    // ----- task creation ---------------------------------------------------

    fn task_size(&self, wf: usize) -> u32 {
        if self.params.adaptive {
            self.sizers[wf].current()
        } else {
            self.cfg.workflows[wf].tasklets_per_task
        }
    }

    fn refill_buffer(&mut self, now: SimTime) {
        while self.buffer.deficit() > 0 {
            let mut created = false;
            for wf_idx in 0..self.workflows.len() {
                let size = self.task_size(wf_idx);
                // Disjoint field borrows: no per-task clone of the name.
                let created_id = self.db.create_task(&self.workflows[wf_idx].name, size);
                if let Some(id) = created_id {
                    let n = self.db.task_tasklets(id).expect("created").len() as u32;
                    let wf = &self.workflows[wf_idx];
                    let cpu = wf.sample_task_cpu(n, &mut self.rng);
                    self.tasks.insert(
                        id,
                        TaskInfo {
                            wf: wf_idx,
                            category: Category::Analysis,
                            input_bytes: wf.task_input_bytes(n),
                            output_bytes: wf.task_output_bytes(n),
                            cpu,
                            phase: Phase::Queued,
                            worker: None,
                            builder: None,
                            enqueued_at: now,
                            phase_started: now,
                            env_flow: None,
                            data_flow: None,
                            merge_inputs: None,
                            attempt: 0,
                            watchdog: None,
                        },
                    );
                    self.buffer.push(id);
                    created = true;
                    break;
                }
            }
            if !created {
                break;
            }
        }
    }

    fn create_merge_task(&mut self, now: SimTime, inputs: Vec<(TaskId, u64)>) {
        let bytes: u64 = inputs.iter().map(|i| i.1).sum();
        // Journal the group first: a crash between planning and
        // completion re-issues exactly this merge on resume.
        let id = match self.db.create_merge_group(&inputs) {
            Ok(id) => id,
            Err(e) => {
                debug_assert!(false, "planner drained an unmergeable group: {e}");
                return;
            }
        };
        let cpu = self.params.merge_cpu_per_gb.mul_f64(bytes as f64 / 1e9);
        self.tasks.insert(
            id,
            TaskInfo {
                wf: 0,
                category: Category::Merge,
                input_bytes: bytes,
                output_bytes: bytes,
                cpu,
                phase: Phase::Queued,
                worker: None,
                builder: None,
                enqueued_at: now,
                phase_started: now,
                env_flow: None,
                data_flow: None,
                merge_inputs: Some(inputs),
                attempt: 0,
                watchdog: None,
            },
        );
        self.merge_queue.push_back(id);
    }

    // ----- dispatch --------------------------------------------------------

    /// Flush a batch of same-instant sandbox grants as one event (or a
    /// plain [`Ev::SandboxDone`] when the batch holds a single task).
    fn flush_sandbox_batch(
        &mut self,
        done: SimTime,
        mut batch: Vec<(TaskId, u32)>,
        ctx: &mut Ctx<Ev>,
    ) {
        if batch.len() == 1 {
            let (id, attempt) = batch[0];
            ctx.schedule_at(done, Ev::SandboxDone(id, attempt));
            batch.clear();
            self.batch_pool.push(batch);
        } else {
            ctx.schedule_at(done, Ev::SandboxBatch(batch));
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.refill_buffer(now);
        // Consecutive grants that finish at the same instant coalesce
        // into one batched event (payload buffers recycled per round).
        let mut batch: Vec<(TaskId, u32)> = self.batch_pool.pop().unwrap_or_default();
        let mut batch_done = SimTime::ZERO;
        loop {
            // Merge tasks first (they unblock publication), then analysis.
            let (id, from_merge) = if let Some(&id) = self.merge_queue.front() {
                (id, true)
            } else if let Some(id) = self.buffer.pop() {
                (id, false)
            } else {
                break;
            };
            let Some(worker) = self.table.claim_slot() else {
                if !from_merge {
                    self.buffer.push_front(id);
                }
                break;
            };
            if from_merge {
                self.merge_queue.pop_front();
            }
            let foreman = self.table.get(worker).expect("claimed").foreman;
            let grant = self.foremen[foreman].offer(now, self.params.sandbox_service);
            let t = self.tasks.get_mut(id).expect("queued task");
            t.phase = Phase::Sandbox;
            t.worker = Some(worker);
            t.attempt += 1;
            t.phase_started = now;
            let attempt = t.attempt;
            let mut builder = ReportBuilder::new(id, t.category, t.attempt - 1, worker, now);
            builder.times_mut().queued = now - t.enqueued_at;
            builder.times_mut().wq_stage_in = grant.done - now;
            t.builder = Some(builder);
            let category = t.category;
            if category == Category::Analysis {
                if let Err(e) = self.db.mark_running(id) {
                    debug_assert!(false, "dispatched a task the db rejects: {e}");
                }
            }
            let rix = worker as usize;
            if rix >= self.running_on.len() {
                self.running_on.resize_with(rix + 1, Vec::new);
            }
            self.running_on[rix].push(id);
            if !batch.is_empty() && batch_done != grant.done {
                let full = std::mem::replace(&mut batch, self.batch_pool.pop().unwrap_or_default());
                self.flush_sandbox_batch(batch_done, full, ctx);
            }
            batch_done = grant.done;
            batch.push((id, attempt));
        }
        if batch.is_empty() {
            self.batch_pool.push(batch);
        } else {
            self.flush_sandbox_batch(batch_done, batch, ctx);
        }
    }

    // ----- wrapper segments -------------------------------------------------

    fn on_sandbox_done(&mut self, id: TaskId, attempt: u32, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let worker = {
            let Some(t) = self.tasks.get_mut(id) else {
                return;
            };
            if t.phase != Phase::Sandbox || t.attempt != attempt {
                return; // stale (evicted or retried meanwhile)
            }
            t.phase = Phase::EnvSetup;
            t.phase_started = now;
            let Some(w) = t.worker else { return };
            w
        };
        self.arm_watchdog(id, Segment::EnvInit, ctx);
        let hot = self.table.get(worker).map(|w| w.cache_hot).unwrap_or(false);
        let squid_idx = (worker as usize) % self.squids.len();
        if hot {
            // Cheap re-validation + conditions payload, one per task.
            let bytes = self.catalog.hot_bytes();
            match self.squid_admit(squid_idx, now, bytes) {
                Ok(flow) => {
                    self.squid_flows[squid_idx].insert(flow, id);
                    if let Some(t) = self.tasks.get_mut(id) {
                        t.env_flow = Some((squid_idx, flow));
                    }
                    self.reschedule_squid(squid_idx, ctx);
                }
                Err(TimedOut) => self.fail_attempt(id, Segment::EnvInit, false, ctx),
            }
        } else if self.cfg.infra.alien_cache {
            // Alien cache (§4.3): one cold fill per worker; concurrent
            // tasks on the same worker *join* the in-flight fill instead
            // of issuing their own.
            if let Some((_, _, waiters)) = self.env_fill.get_mut(&worker) {
                waiters.push(id);
                return;
            }
            let bytes = self.catalog.total_bytes();
            match self.squid_admit(squid_idx, now, bytes) {
                Ok(flow) => {
                    self.squid_fill_flows[squid_idx].insert(flow, worker);
                    self.env_fill.insert(worker, (squid_idx, flow, vec![id]));
                    self.reschedule_squid(squid_idx, ctx);
                }
                Err(TimedOut) => self.fail_attempt(id, Segment::EnvInit, false, ctx),
            }
        } else {
            // No alien cache: every task pays the full cold fill into its
            // own cache directory (Figure 6(b) economics).
            let bytes = self.catalog.total_bytes();
            match self.squid_admit(squid_idx, now, bytes) {
                Ok(flow) => {
                    self.squid_flows[squid_idx].insert(flow, id);
                    if let Some(t) = self.tasks.get_mut(id) {
                        t.env_flow = Some((squid_idx, flow));
                    }
                    self.reschedule_squid(squid_idx, ctx);
                }
                Err(TimedOut) => self.fail_attempt(id, Segment::EnvInit, false, ctx),
            }
        }
    }

    /// Squid request with any injected failure probability applied first
    /// (the fault layer models proxies that drop connections outright).
    fn squid_admit(&mut self, idx: usize, now: SimTime, bytes: u64) -> Result<FlowId, TimedOut> {
        let p = self.squids[idx].fault().failure_prob();
        if p > 0.0 && self.rng.chance(p) {
            return Err(TimedOut);
        }
        self.squids[idx].request(now, bytes)
    }

    /// Chirp read with any injected failure probability applied first.
    fn chirp_admit_get(&mut self, now: SimTime, bytes: u64) -> Result<Grant, ChirpDown> {
        let p = self.chirp.fault().failure_prob();
        if p > 0.0 && self.rng.chance(p) {
            return Err(ChirpDown);
        }
        self.chirp.try_get(now, bytes)
    }

    /// Chirp write with any injected failure probability applied first.
    fn chirp_admit_put(&mut self, now: SimTime, bytes: u64) -> Result<Grant, ChirpDown> {
        let p = self.chirp.fault().failure_prob();
        if p > 0.0 && self.rng.chance(p) {
            return Err(ChirpDown);
        }
        self.chirp.try_put(now, bytes)
    }

    // ----- segment watchdogs -------------------------------------------------

    /// The configured deadline for `segment`, if any.
    fn segment_deadline(&self, segment: Segment) -> Option<SimDuration> {
        let d = &self.cfg.retry.deadlines;
        match segment {
            Segment::EnvInit => d.env_setup,
            Segment::StageIn => d.stage_in,
            Segment::Execute => d.execute,
            Segment::StageOut => d.stage_out,
            Segment::Compatibility => None,
        }
    }

    /// Arm (or re-arm) `id`'s watchdog for `segment`, expiring `deadline`
    /// after `from`. No-op when the segment has no configured deadline —
    /// any previously armed watchdog is still cancelled, so segments
    /// without deadlines never inherit a stale one.
    fn arm_watchdog_from(
        &mut self,
        id: TaskId,
        segment: Segment,
        from: SimTime,
        ctx: &mut Ctx<Ev>,
    ) {
        let deadline = self.segment_deadline(segment);
        let Some(t) = self.tasks.get_mut(id) else {
            return;
        };
        if let Some((_, _, ev)) = t.watchdog.take() {
            ctx.cancel(ev);
        }
        let Some(dl) = deadline else { return };
        self.watchdog_seq += 1;
        let seq = self.watchdog_seq;
        let ev = ctx.schedule_at(from + dl, Ev::Deadline(id, seq));
        t.watchdog = Some((seq, segment, ev));
    }

    /// Arm `id`'s watchdog for `segment`, measured from now.
    fn arm_watchdog(&mut self, id: TaskId, segment: Segment, ctx: &mut Ctx<Ev>) {
        self.arm_watchdog_from(id, segment, ctx.now(), ctx);
    }

    /// Cancel `id`'s armed watchdog, if any.
    fn disarm_watchdog(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        if let Some(t) = self.tasks.get_mut(id) {
            if let Some((_, _, ev)) = t.watchdog.take() {
                ctx.cancel(ev);
            }
        }
    }

    fn on_deadline(&mut self, id: TaskId, seq: u64, ctx: &mut Ctx<Ev>) {
        let Some(t) = self.tasks.get_mut(id) else {
            return;
        };
        let Some((armed, segment, _)) = t.watchdog else {
            return;
        };
        if armed != seq {
            return; // stale: the watchdog was re-armed since
        }
        // This very event fired; clear without cancelling so the engine's
        // tombstone set stays clean.
        t.watchdog = None;
        self.fail_attempt(id, segment, true, ctx);
    }

    fn reschedule_squid(&mut self, idx: usize, ctx: &mut Ctx<Ev>) {
        if let Some(ev) = self.squid_wake[idx].take() {
            ctx.cancel(ev);
        }
        if let Some((when, _)) = self.squids[idx].next_completion() {
            self.squid_wake[idx] = Some(ctx.schedule_at(when, Ev::SquidWake(idx)));
        }
    }

    fn on_squid_wake(&mut self, idx: usize, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.squid_wake[idx] = None;
        // Drain into the reused scratch buffer — one squid wake fires per
        // predicted completion, so this path is allocation-free.
        let mut done = std::mem::take(&mut self.scratch_flows);
        self.squids[idx].completions_into(now, &mut done);
        for &flow in &done {
            if let Some(worker) = self.squid_fill_flows[idx].remove(&flow) {
                // A shared cold fill finished: the worker is hot and every
                // waiting task proceeds.
                self.table.set_cache_hot(worker);
                self.env_fail_streak.remove(&worker);
                let waiters = self
                    .env_fill
                    .remove(&worker)
                    .map(|(_, _, w)| w)
                    .unwrap_or_default();
                for id in waiters {
                    let Some(t) = self.tasks.get_mut(id) else {
                        continue;
                    };
                    if t.phase != Phase::EnvSetup || t.worker != Some(worker) {
                        continue;
                    }
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().env_setup = now - t.phase_started;
                    }
                    self.begin_data_phase(id, ctx);
                }
                continue;
            }
            let Some(id) = self.squid_flows[idx].remove(&flow) else {
                continue;
            };
            let Some(t) = self.tasks.get_mut(id) else {
                continue;
            };
            if t.phase != Phase::EnvSetup {
                continue;
            }
            t.env_flow = None;
            if let Some(w) = t.worker {
                self.env_fail_streak.remove(&w);
            }
            if let Some(b) = t.builder.as_mut() {
                b.times_mut().env_setup = now - t.phase_started;
            }
            self.begin_data_phase(id, ctx);
        }
        self.scratch_flows = done;
        self.reschedule_squid(idx, ctx);
    }

    fn begin_data_phase(&mut self, id: TaskId, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.disarm_watchdog(id, ctx);
        let Some(t) = self.tasks.get_mut(id) else {
            return;
        };
        t.phase = Phase::Exec;
        t.phase_started = now;
        let (wf, kind, input, cpu, category, attempt) = (
            t.wf,
            self.workflows[t.wf].kind,
            t.input_bytes,
            t.cpu,
            t.category,
            t.attempt,
        );
        let streaming = kind == WorkloadKind::DataProcessing
            && self.cfg.access == DataAccessMode::Stream
            && category != Category::Merge;
        if input == 0 {
            // Pure generation: straight to execution.
            if let Some(b) = t.builder.as_mut() {
                b.times_mut().cpu = cpu;
            }
            ctx.schedule(cpu, Ev::ExecDone(id, attempt));
            self.arm_watchdog(id, Segment::Execute, ctx);
        } else if kind == WorkloadKind::Simulation || category == Category::Merge {
            // Input staged from *local* storage via Chirp: the pile-up
            // overlay for simulation tasks (§6), and the already
            // staged-out analysis outputs for merge tasks (§4.4) — merge
            // inputs never cross the WAN.
            match self.chirp_admit_get(now, input) {
                Ok(grant) => {
                    let Some(t) = self.tasks.get_mut(id) else {
                        return;
                    };
                    t.phase = Phase::Data;
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().stage_in = grant.done - now;
                    }
                    ctx.schedule_at(grant.done, Ev::DataStaged(id, attempt));
                    self.arm_watchdog(id, Segment::StageIn, ctx);
                }
                Err(ChirpDown) => self.fail_attempt(id, Segment::StageIn, false, ctx),
            }
        } else {
            // WAN-bound stage-in. Under multi-tenancy the shared squids /
            // alien caches may already hold a fraction of this dataset
            // because *another* tenant pulled it; only the cold remainder
            // crosses the WAN (cross-tenant cache economics). The warmth
            // map is empty for a solo master, leaving `wan_input == input`.
            let ds = &self.cfg.workflows[wf].dataset;
            let warm = self
                .dataset_warmth
                .get(ds)
                .copied()
                .unwrap_or(0.0)
                .clamp(0.0, 1.0);
            let warm_bytes = ((input as f64) * warm) as u64;
            let wan_input = input.saturating_sub(warm_bytes);
            if wan_input > 0 {
                *self.wan_by_dataset.entry(ds.clone()).or_insert(0) += wan_input;
            }
            if wan_input == 0 {
                // Fully warm: the shared cache serves the whole stage-in
                // locally — straight to execution, like pure generation.
                let Some(t) = self.tasks.get_mut(id) else {
                    return;
                };
                if let Some(b) = t.builder.as_mut() {
                    b.times_mut().cpu = cpu;
                }
                ctx.schedule(cpu, Ev::ExecDone(id, attempt));
                self.arm_watchdog(id, Segment::Execute, ctx);
            } else if streaming {
                // XrootD stream: execution overlaps the WAN transfer.
                match self.fed.open(now, &self.consumer, wan_input, &mut self.rng) {
                    Ok(flow) => {
                        self.fed_flows.insert(flow, id);
                        let Some(t) = self.tasks.get_mut(id) else {
                            return;
                        };
                        t.data_flow = Some(flow);
                        if let Some(b) = t.builder.as_mut() {
                            b.times_mut().stage_in = AccessTiming::STREAM_OPEN;
                            b.times_mut().cpu = cpu;
                        }
                        self.reschedule_fed(ctx);
                        // The stage-in watchdog covers the whole stream: a
                        // blackout that freezes the WAN mid-transfer would
                        // otherwise pin this slot to the horizon.
                        self.arm_watchdog(id, Segment::StageIn, ctx);
                    }
                    Err(_) => self.fail_attempt(id, Segment::StageIn, false, ctx),
                }
            } else {
                // Staged remote input (Chirp or WQ transfer, §4.2): the data
                // crosses the same WAN, but the file must fully land before
                // execution starts — no compute/transfer overlap. This is the
                // penalty Figure 4 charges against staging.
                match self.fed.open(now, &self.consumer, wan_input, &mut self.rng) {
                    Ok(flow) => {
                        self.fed_flows.insert(flow, id);
                        let Some(t) = self.tasks.get_mut(id) else {
                            return;
                        };
                        t.data_flow = Some(flow);
                        t.phase = Phase::Data;
                        self.arm_watchdog(id, Segment::StageIn, ctx);
                    }
                    Err(_) => self.fail_attempt(id, Segment::StageIn, false, ctx),
                }
                self.reschedule_fed(ctx);
            }
        }
    }

    /// A Chirp-staged input landed: start the CPU clock.
    fn on_data_staged(&mut self, id: TaskId, attempt: u32, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(t) = self.tasks.get_mut(id) else {
            return;
        };
        if t.phase != Phase::Data || t.attempt != attempt {
            return;
        }
        t.phase = Phase::Exec;
        t.phase_started = now;
        let cpu = t.cpu;
        if let Some(b) = t.builder.as_mut() {
            b.times_mut().cpu = cpu;
        }
        ctx.schedule(cpu, Ev::ExecDone(id, attempt));
        self.arm_watchdog(id, Segment::Execute, ctx);
    }

    fn reschedule_fed(&mut self, ctx: &mut Ctx<Ev>) {
        if let Some(ev) = self.fed_wake.take() {
            ctx.cancel(ev);
        }
        if let Some((when, _)) = self.fed.next_completion() {
            self.fed_wake = Some(ctx.schedule_at(when, Ev::FedWake));
        }
    }

    fn on_fed_wake(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        self.fed_wake = None;
        let mut done = std::mem::take(&mut self.scratch_flows);
        self.fed.completions_into(now, &mut done);
        for &flow in &done {
            let Some(id) = self.fed_flows.remove(&flow) else {
                continue;
            };
            let Some(t) = self.tasks.get_mut(id) else {
                continue;
            };
            if t.data_flow != Some(flow) {
                continue;
            }
            match t.phase {
                Phase::Exec => {
                    t.data_flow = None;
                    // Streaming: CPU started when the stream opened; the
                    // task ends when both stream and CPU are done.
                    let cpu_end = t.phase_started + t.cpu;
                    let end = cpu_end.max(now);
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().io_wait = now.since(cpu_end);
                    }
                    let (attempt, started) = (t.attempt, t.phase_started);
                    ctx.schedule_at(end, Ev::ExecDone(id, attempt));
                    // The stream survived its watchdog; hand over to the
                    // execute deadline, measured from the segment entry
                    // (stream open). Completion is scheduled first, so a
                    // deadline landing at the same instant loses the tie.
                    self.arm_watchdog_from(id, Segment::Execute, started, ctx);
                }
                Phase::Data => {
                    t.data_flow = None;
                    // Staged: the file landed; execution starts now.
                    let stage_in = now - t.phase_started;
                    t.phase = Phase::Exec;
                    t.phase_started = now;
                    if let Some(b) = t.builder.as_mut() {
                        b.times_mut().stage_in = AccessTiming::STAGE_SETUP + stage_in;
                        b.times_mut().cpu = t.cpu;
                    }
                    let (attempt, cpu) = (t.attempt, t.cpu);
                    ctx.schedule_at(now + cpu, Ev::ExecDone(id, attempt));
                    self.arm_watchdog(id, Segment::Execute, ctx);
                }
                _ => {}
            }
        }
        self.scratch_flows = done;
        self.reschedule_fed(ctx);
    }

    fn on_exec_done(&mut self, id: TaskId, attempt: u32, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let output = {
            let Some(t) = self.tasks.get_mut(id) else {
                return;
            };
            if t.phase != Phase::Exec || t.attempt != attempt || t.data_flow.is_some() {
                return; // stale, or the input stream is still in flight
            }
            t.phase = Phase::StageOut;
            t.phase_started = now;
            t.output_bytes
        };
        match self.chirp_admit_put(now, output) {
            Ok(grant) => {
                let Some(t) = self.tasks.get_mut(id) else {
                    return;
                };
                if let Some(b) = t.builder.as_mut() {
                    b.times_mut().stage_out = grant.done - now;
                }
                ctx.schedule_at(grant.done, Ev::StageOutDone(id, attempt));
                self.arm_watchdog(id, Segment::StageOut, ctx);
            }
            Err(ChirpDown) => self.fail_attempt(id, Segment::StageOut, false, ctx),
        }
    }

    fn on_stage_out_done(&mut self, id: TaskId, attempt: u32, ctx: &mut Ctx<Ev>) {
        {
            let Some(t) = self.tasks.get_mut(id) else {
                return;
            };
            if t.phase != Phase::StageOut || t.attempt != attempt {
                return;
            }
            t.phase = Phase::Collect;
            if let Some(b) = t.builder.as_mut() {
                b.times_mut().wq_stage_out = self.params.wq_collect;
            }
        }
        ctx.schedule(self.params.wq_collect, Ev::CollectDone(id, attempt));
        self.disarm_watchdog(id, ctx);
    }

    fn on_collect_done(&mut self, id: TaskId, attempt: u32, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        match self.tasks.get(id) {
            Some(t) if t.phase == Phase::Collect && t.attempt == attempt => {}
            _ => return,
        }
        let Some(mut t) = self.tasks.remove(id) else {
            return;
        };
        if let Some((_, _, ev)) = t.watchdog.take() {
            ctx.cancel(ev);
        }
        let worker = t.worker.expect("running");
        let Some(report) = t.builder.take().map(|b| b.succeed(now, t.output_bytes)) else {
            return;
        };
        self.release_task_slot(worker, id);
        self.ingest(&report, t.wf);
        if t.category == Category::Merge {
            self.merge_done.mark(now);
            let inputs = t.merge_inputs.take().expect("merge task");
            let ids: Vec<TaskId> = inputs.iter().map(|i| i.0).collect();
            let bytes: u64 = inputs.iter().map(|i| i.1).sum();
            let name = format!("merged_{}.root", id.0);
            self.unmerged_count = self.unmerged_count.saturating_sub(ids.len() as u64);
            if let Err(e) = self.db.mark_merged(Some(id), &ids, &name, bytes) {
                debug_assert!(false, "completed merge the db rejects: {e}");
            }
        } else {
            self.analysis_done.mark(now);
            if let Err(e) = self.db.mark_done(id, t.output_bytes) {
                debug_assert!(false, "completed task the db rejects: {e}");
            }
            self.unmerged_count += 1;
            self.pending_outputs.push_back((id, t.output_bytes));
            self.pending_bytes += t.output_bytes;
            self.maybe_plan_merges(now, ctx);
        }
        self.check_finished(now);
        self.dispatch(ctx);
    }

    // ----- merging ----------------------------------------------------------

    /// Drain one target-sized group off the pending-output queue, or the
    /// whole remainder when `flush` is set.
    fn drain_group(&mut self, flush: bool) -> Option<Vec<(TaskId, u64)>> {
        let target = self.planner.target_bytes();
        if !flush && self.pending_bytes < target {
            return None;
        }
        let mut group = Vec::new();
        let mut acc = 0u64;
        while acc < target {
            let Some((id, bytes)) = self.pending_outputs.pop_front() else {
                break;
            };
            acc += bytes;
            self.pending_bytes -= bytes;
            group.push((id, bytes));
        }
        if group.is_empty() {
            None
        } else {
            Some(group)
        }
    }

    fn analysis_progress(&self) -> f64 {
        if self.analysis_units == 0 {
            1.0
        } else {
            self.db.total_done_tasklets() as f64 / self.analysis_units as f64
        }
    }

    fn analysis_exhausted(&self) -> bool {
        // Dead-lettered tasklets count against the total: a withdrawn
        // task must not hold the merge flush (and the run) hostage.
        // Per-workflow done + dead never exceeds the workflow's total, so
        // the summed comparison is exact, not an approximation.
        self.db.total_done_tasklets() + self.db.total_dead_tasklets() >= self.analysis_units
    }

    fn maybe_plan_merges(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        match self.cfg.merge {
            MergeMode::Interleaved => {
                // "Merge tasks will only be created when enough processing
                // tasks have finished to create a sufficiently large merged
                // output file", gated at 10 % workflow progress (§4.4).
                let flush = self.analysis_exhausted();
                if !flush && self.analysis_progress() < 0.10 {
                    return;
                }
                while let Some(group) = self.drain_group(flush) {
                    self.create_merge_task(now, group);
                }
            }
            MergeMode::Sequential => {
                if self.analysis_exhausted() && !self.sequential_planned {
                    self.sequential_planned = true;
                    while let Some(group) = self.drain_group(true) {
                        self.create_merge_task(now, group);
                    }
                }
            }
            MergeMode::Hadoop => {
                if self.analysis_exhausted() && !self.hadoop_started {
                    self.hadoop_started = true;
                    self.plan_hadoop(now, ctx);
                }
            }
        }
    }

    /// LPT-assign merge groups to reducers; schedule per-group completions.
    fn plan_hadoop(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        let mut outs = Vec::new();
        while let Some(group) = self.drain_group(true) {
            outs.push(group);
        }
        let mut groups: Vec<crate::merge::MergeGroup> = outs
            .into_iter()
            .map(|inputs| crate::merge::MergeGroup { inputs })
            .collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.bytes()));
        let mut reducer_free = vec![SimDuration::ZERO; self.params.hadoop_reducers.max(1)];
        for g in groups {
            let bytes = g.bytes();
            // The merge reads and writes the data once each, in-cluster.
            let dur = SimDuration::from_secs_f64(2.0 * bytes as f64 / self.params.hadoop_rate);
            let r = reducer_free
                .iter()
                .enumerate()
                .min_by_key(|(_, d)| **d)
                .map(|(i, _)| i)
                .expect("at least one reducer");
            let start = reducer_free[r];
            reducer_free[r] = start + dur;
            let gi = self.hadoop_groups.len();
            self.hadoop_groups.push((g.inputs, bytes));
            ctx.schedule_at(now + start + dur, Ev::HadoopGroupDone(gi));
        }
    }

    fn on_hadoop_group_done(&mut self, gi: usize, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        // Each group completes exactly once; take it instead of cloning.
        let (inputs, bytes) = std::mem::take(&mut self.hadoop_groups[gi]);
        let ids: Vec<TaskId> = inputs.iter().map(|i| i.0).collect();
        // Name by files produced, not group index: a resumed run replans
        // the outstanding groups from scratch, so indices shift but the
        // produced-file sequence stays collision-free.
        let name = format!("merged_h{}.root", self.db.merged_file_count());
        self.unmerged_count = self.unmerged_count.saturating_sub(ids.len() as u64);
        if let Err(e) = self.db.mark_merged(None, &ids, &name, bytes) {
            debug_assert!(false, "completed hadoop merge the db rejects: {e}");
        }
        self.merge_done.mark(now);
        self.check_finished(now);
        let _ = ctx;
    }

    // ----- failure & eviction ------------------------------------------------

    /// Fail one attempt of `id` in `segment` — either rejected at
    /// admission (`by_watchdog == false`) or stuck mid-flight and killed
    /// by its segment watchdog. Releases or holds the slot, aborts any
    /// in-flight transfers, reports the failure, and routes the task
    /// through the retry policy.
    fn fail_attempt(&mut self, id: TaskId, segment: Segment, by_watchdog: bool, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(mut t) = self.tasks.remove(id) else {
            return;
        };
        if let Some((_, _, ev)) = t.watchdog.take() {
            ctx.cancel(ev);
        }
        let Some(worker) = t.worker else { return };
        // A task waiting on a shared alien-cache fill holds no flow of
        // its own; drop it from the fill's waiter list (killing the fill
        // when it was the last waiter).
        if t.phase == Phase::EnvSetup {
            self.scrub_env_fill(id, worker, now, ctx);
        }
        if segment == Segment::EnvInit {
            // The proxy tier is overloaded: hold the slot back instead of
            // immediately re-dispatching into the same congestion (the
            // client-side retry backoff of §6). The hold grows with the
            // worker's consecutive env failures, per the retry policy.
            if let Some(list) = self.running_on.get_mut(worker as usize) {
                if let Some(pos) = list.iter().position(|t| *t == id) {
                    list.swap_remove(pos);
                }
            }
            let streak = self.env_fail_streak.entry(worker).or_insert(0);
            *streak += 1;
            let failures = *streak;
            let hold = self.cfg.retry.slot_hold.delay(failures, &mut self.rng);
            self.db.record_backoff(hold);
            ctx.schedule(hold, Ev::SlotFree(worker));
        } else {
            self.release_task_slot(worker, id);
        }
        let squid_aborted = t.env_flow.map(|(idx, _)| idx);
        let fed_aborted = t.data_flow.is_some();
        self.abort_flows(&mut t, now);
        // A mid-flight abort re-times the component's remaining flows.
        if let Some(idx) = squid_aborted {
            self.reschedule_squid(idx, ctx);
        }
        if fed_aborted {
            self.reschedule_fed(ctx);
        }
        if let Some(b) = t.builder.take() {
            let report = if by_watchdog {
                b.abort_by_watchdog(segment, now)
            } else {
                b.fail(segment, now)
            };
            self.ingest(&report, t.wf);
        }
        self.retry_or_dead_letter(id, t, segment.failure_code(), now, ctx);
        self.check_finished(now);
        self.dispatch(ctx);
    }

    /// Remove `id` from its worker's shared cold-fill waiters; when it
    /// was the last waiter, abort the fill itself.
    fn scrub_env_fill(&mut self, id: TaskId, worker: u64, now: SimTime, ctx: &mut Ctx<Ev>) {
        let Some((idx, flow, waiters)) = self.env_fill.get_mut(&worker) else {
            return;
        };
        waiters.retain(|w| *w != id);
        if waiters.is_empty() {
            let (idx, flow) = (*idx, *flow);
            self.env_fill.remove(&worker);
            self.squids[idx].abort(now, flow);
            self.squid_fill_flows[idx].remove(&flow);
            self.reschedule_squid(idx, ctx);
        }
    }

    /// After a failed attempt: retry within the configured budget, or
    /// withdraw the task to the dead-letter ledger.
    fn retry_or_dead_letter(
        &mut self,
        id: TaskId,
        t: TaskInfo,
        code: FailureCode,
        now: SimTime,
        ctx: &mut Ctx<Ev>,
    ) {
        let Some(max) = self.cfg.retry.max_attempts else {
            // Unbounded legacy policy: merges re-enqueue whole, analysis
            // tasklets return to the pool for re-covering.
            self.requeue(id, t, now);
            return;
        };
        if t.attempt >= max {
            self.dead_letter(id, t, code, now, ctx);
            return;
        }
        // Bounded budget: the same task identity retries so the attempt
        // count carries across failures.
        let delay = self.cfg.retry.requeue.delay(t.attempt, &mut self.rng);
        let mut t = t;
        t.phase = Phase::Queued;
        t.worker = None;
        t.builder = None;
        t.env_flow = None;
        t.data_flow = None;
        t.watchdog = None;
        t.enqueued_at = now + delay;
        let category = t.category;
        self.tasks.insert(id, t);
        if delay.is_zero() {
            self.enqueue_retry(id, category);
        } else {
            self.db.record_backoff(delay);
            ctx.schedule(delay, Ev::Requeue(id));
        }
    }

    fn enqueue_retry(&mut self, id: TaskId, category: Category) {
        if category == Category::Merge {
            self.merge_queue.push_back(id);
        } else {
            self.buffer.push(id);
        }
    }

    /// Withdraw a task whose retry budget is spent. The work it covered
    /// is accounted as dead so the run can still quiesce.
    fn dead_letter(
        &mut self,
        id: TaskId,
        mut t: TaskInfo,
        code: FailureCode,
        now: SimTime,
        ctx: &mut Ctx<Ev>,
    ) {
        let units = match t.category {
            Category::Merge => {
                let inputs = t.merge_inputs.take().unwrap_or_default();
                self.unmerged_count = self.unmerged_count.saturating_sub(inputs.len() as u64);
                inputs.len() as u64
            }
            _ => {
                // The tasklets stay assigned to the withdrawn task in the
                // db — never re-issued — and the db accounts them dead.
                self.db
                    .task_tasklets(id)
                    .map(|v| v.len() as u64)
                    .unwrap_or(0)
            }
        };
        self.db.record_dead_letter(DeadLetter {
            task: id,
            category: t.category,
            code,
            attempts: t.attempt,
            units,
            at: now,
        });
        self.timeline.record_dead_letter(now);
        // Withdrawing work can complete the analysis phase, which in turn
        // unblocks the merge planner's flush conditions.
        self.maybe_plan_merges(now, ctx);
    }

    fn abort_flows(&mut self, t: &mut TaskInfo, now: SimTime) {
        if let Some((idx, flow)) = t.env_flow.take() {
            self.squids[idx].abort(now, flow);
            self.squid_flows[idx].remove(&flow);
        }
        if let Some(flow) = t.data_flow.take() {
            self.fed.abort(now, flow);
            self.fed_flows.remove(&flow);
        }
    }

    /// Return a task's work to the system after a failed attempt under
    /// the unbounded (legacy) retry policy.
    fn requeue(&mut self, id: TaskId, t: TaskInfo, now: SimTime) {
        if t.category == Category::Merge {
            // Re-enqueue the same merge group.
            let mut t = t;
            t.phase = Phase::Queued;
            t.worker = None;
            t.builder = None;
            t.enqueued_at = now;
            self.tasks.insert(id, t);
            self.merge_queue.push_back(id);
        } else {
            // Tasklets go back to the pool; fresh tasks re-cover them.
            if let Err(e) = self.db.mark_lost(id) {
                debug_assert!(false, "requeued a task the db rejects: {e}");
            }
        }
    }

    fn release_task_slot(&mut self, worker: u64, id: TaskId) {
        if let Some(list) = self.running_on.get_mut(worker as usize) {
            if let Some(pos) = list.iter().position(|t| *t == id) {
                list.swap_remove(pos);
                self.table.release_slot(worker);
            }
        }
    }

    fn evict_worker(&mut self, worker: u64, release_pool: bool, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let Some(w) = self.table.disconnect(worker) else {
            return;
        };
        if let Some(ev) = self.worker_evict_ev.remove(&worker) {
            ctx.cancel(ev);
        }
        self.log.leave(worker, now, LeaveReason::Evicted);
        self.factory.on_exit();
        if release_pool {
            self.pool.release(w.cores);
        }
        // Abort the worker's shared cold fill, if one is in flight.
        if let Some((idx, flow, _)) = self.env_fill.remove(&worker) {
            self.squids[idx].abort(now, flow);
            self.squid_fill_flows[idx].remove(&flow);
            self.reschedule_squid(idx, ctx);
        }
        self.env_fail_streak.remove(&worker);
        let mut victims = match self.running_on.get_mut(worker as usize) {
            Some(list) => std::mem::take(list),
            None => Vec::new(),
        };
        // Per-worker lists are in dispatch order; process in id order so
        // eviction fallout is independent of that order.
        victims.sort_unstable();
        for id in victims {
            let Some(mut t) = self.tasks.remove(id) else {
                continue;
            };
            if let Some((_, _, ev)) = t.watchdog.take() {
                ctx.cancel(ev);
            }
            self.abort_flows(&mut t, now);
            if let Some(b) = t.builder.take() {
                let report = b.evict(now);
                self.ingest(&report, t.wf);
            }
            self.retry_or_dead_letter(id, t, FailureCode::Evicted, now, ctx);
        }
        self.check_finished(now);
        self.dispatch(ctx);
    }

    // ----- provisioning -------------------------------------------------------

    fn on_worker_arrive(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let cores = self.factory.config().cores_per_worker;
        let granted = self.pool.claim(cores);
        self.factory.on_start_attempt(granted);
        if !granted {
            return;
        }
        let foreman = (self.rng.next_u64() as usize) % self.foremen.len();
        let id = self.table.connect(cores, foreman, now);
        self.log.join(id, now);
        let survival = self.params.availability.sample(&mut self.rng);
        if survival < SimDuration::MAX {
            let ev = ctx.schedule(survival, Ev::WorkerEvict(id));
            self.worker_evict_ev.insert(id, ev);
        }
        self.dispatch(ctx);
    }

    // ----- monitoring -----------------------------------------------------------

    fn ingest(&mut self, report: &SegmentReport, wf: usize) {
        // The attempt is journaled: accounting and the failure/eviction
        // counters are rebuilt from these records on recovery.
        self.db.record_attempt(report);
        self.timeline.record(report);
        self.advisor.record(report);
        self.seg_hist.record(report);
        if self.params.adaptive {
            if let Some(sizer) = self.sizers.get_mut(wf) {
                sizer.record(report);
                if report.evicted || report.task.0.is_multiple_of(20) {
                    sizer.adjust();
                }
            }
        }
    }

    // ----- fault injection ---------------------------------------------------

    /// Apply the injected fault plan's state at `now` to every component,
    /// re-timing wakes for components whose in-flight flows changed, and
    /// schedule the next transition. Called at start-up and on every
    /// [`Ev::FaultWake`].
    fn apply_faults(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.params.faults.is_empty() {
            return;
        }
        let plan = self.params.faults.clone();
        for idx in 0..self.squids.len() {
            let (cf, fp) = plan.state(FaultTarget::Squid { index: idx }, now);
            if self.squids[idx].set_fault(now, cf, fp) {
                self.reschedule_squid(idx, ctx);
            }
        }
        let (cf, fp) = plan.state(FaultTarget::Chirp, now);
        self.chirp.set_fault(cf, fp);
        let (cf, fp) = plan.state(FaultTarget::Federation, now);
        if self.fed.set_fault(now, cf, fp) {
            self.reschedule_fed(ctx);
        }
        if let Some(t) = plan.next_transition(now) {
            ctx.schedule_at(t, Ev::FaultWake);
        }
    }

    fn check_finished(&mut self, now: SimTime) {
        if self.finished_at.is_none()
            && self.analysis_exhausted()
            && self.unmerged_count == 0
            && self.merge_queue.is_empty()
            && self.tasks.is_empty()
        {
            self.finished_at = Some(now);
        }
    }
}

impl Model for ClusterSim {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::Start => {
                self.refill_buffer(ctx.now());
                ctx.schedule(SimDuration::ZERO, Ev::Replenish);
                ctx.schedule(self.pool.tick_interval(), Ev::PoolTick);
                if let Some(t) = self.fed.next_outage_transition(ctx.now()) {
                    ctx.schedule_at(t, Ev::OutageWake);
                }
                self.apply_faults(ctx.now(), ctx);
                // A resumed run may already hold mergeable outputs — or
                // even be one merge short of done; re-enter the planner
                // so recovery does not depend on further completions.
                self.maybe_plan_merges(ctx.now(), ctx);
                self.check_finished(ctx.now());
            }
            Ev::Replenish => {
                if !self.done() {
                    let mut delays = std::mem::take(&mut self.scratch_delays);
                    self.factory.replenish_into(&mut self.rng, &mut delays);
                    for &d in &delays {
                        ctx.schedule(d, Ev::WorkerArrive);
                    }
                    self.scratch_delays = delays;
                    ctx.schedule(SimDuration::from_mins(1), Ev::Replenish);
                }
            }
            Ev::PoolTick => {
                if !self.done() {
                    let owed = self.pool.tick(ctx.now());
                    let mut evict_cores = owed;
                    let mut killed = 0u32;
                    while evict_cores > 0 {
                        // Reclaim youngest workers first (LIFO — the batch
                        // system preempts the newest scavengers).
                        let victim = self.table.iter().map(|w| w.id).max();
                        let Some(victim) = victim else { break };
                        let cores = self.table.get(victim).expect("present").cores;
                        self.evict_worker(victim, false, ctx);
                        killed += cores;
                        evict_cores = evict_cores.saturating_sub(cores);
                    }
                    // The pool already reclaimed `owed` cores, but whole
                    // workers die: hand back the difference or the pool's
                    // `ours` ledger drifts above what the table holds and —
                    // under a tight arbiter share cap — pins idle capacity
                    // at zero with no live workers (permanent starvation).
                    if killed > owed {
                        self.pool.release(killed - owed);
                    }
                    ctx.schedule(self.pool.tick_interval(), Ev::PoolTick);
                }
            }
            Ev::WorkerArrive => {
                if !self.done() {
                    self.on_worker_arrive(ctx);
                }
            }
            Ev::WorkerEvict(w) => self.evict_worker(w, true, ctx),
            Ev::Dispatch => self.dispatch(ctx),
            Ev::SandboxDone(id, a) => self.on_sandbox_done(id, a, ctx),
            Ev::SandboxBatch(mut batch) => {
                for &(id, a) in &batch {
                    self.on_sandbox_done(id, a, ctx);
                }
                batch.clear();
                self.batch_pool.push(batch);
            }
            Ev::SquidWake(i) => self.on_squid_wake(i, ctx),
            Ev::FedWake => self.on_fed_wake(ctx),
            Ev::OutageWake => {
                let now = ctx.now();
                self.fed.apply_outage(now);
                self.reschedule_fed(ctx);
                if let Some(t) = self.fed.next_outage_transition(now) {
                    ctx.schedule_at(t, Ev::OutageWake);
                }
            }
            Ev::FaultWake => self.apply_faults(ctx.now(), ctx),
            Ev::DataStaged(id, a) => self.on_data_staged(id, a, ctx),
            Ev::ExecDone(id, a) => self.on_exec_done(id, a, ctx),
            Ev::StageOutDone(id, a) => self.on_stage_out_done(id, a, ctx),
            Ev::CollectDone(id, a) => self.on_collect_done(id, a, ctx),
            Ev::HadoopGroupDone(g) => self.on_hadoop_group_done(g, ctx),
            Ev::SlotFree(worker) => {
                self.table.release_slot(worker);
                self.dispatch(ctx);
            }
            Ev::Deadline(id, seq) => self.on_deadline(id, seq, ctx),
            Ev::Requeue(id) => {
                let ready = self
                    .tasks
                    .get(id)
                    .filter(|t| t.phase == Phase::Queued && t.worker.is_none())
                    .map(|t| t.category);
                if let Some(category) = ready {
                    self.enqueue_retry(id, category);
                    self.dispatch(ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backoff, WorkflowConfig};
    use crate::fault::Fault;
    use gridstore::dbs::{DatasetSpec, Dbs};
    use simnet::outage::Outage;
    use std::collections::BTreeSet;

    fn mins(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(m)
    }

    /// WAN bytes the dashboard credits to the Lobster consumer.
    fn lobster_wan_bytes(report: &RunReport) -> f64 {
        report
            .dashboard
            .iter()
            .filter(|(s, _)| s.contains("Lobster"))
            .map(|(_, b)| *b)
            .sum()
    }

    fn small_setup(
        merge: MergeMode,
        availability: AvailabilityModel,
        outages: OutageSchedule,
        n_files: usize,
    ) -> (LobsterConfig, SimParams, Vec<Workflow>) {
        let mut cfg = LobsterConfig::default();
        cfg.merge = merge;
        cfg.workers.target_cores = 64;
        cfg.workers.cores_per_worker = 4;
        cfg.merge_target_bytes = 200_000_000;
        cfg.seed = 42;
        let mut dbs = Dbs::new();
        dbs.generate(
            "/TTJets/Spring14/AOD",
            DatasetSpec {
                n_files,
                mean_file_bytes: 500_000_000,
                events_per_lumi: 100,
                lumis_per_file: 50,
            },
            7,
        );
        let ds = dbs.query("/TTJets/Spring14/AOD").unwrap();
        let wf = Workflow::from_dataset(&cfg.workflows[0], ds);
        let params = SimParams {
            availability,
            outages,
            pool: PoolConfig {
                total_cores: 200,
                owner_mean: 20.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(96),
            ..SimParams::default()
        };
        (cfg, params, vec![wf])
    }

    #[test]
    fn small_run_completes_interleaved() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let total_tasklets = wfs[0].n_tasklets();
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(
            report.finished_at.is_some(),
            "run should finish: {report:?}"
        );
        assert!(report.tasks_completed > 0);
        assert_eq!(report.tasks_failed, 0, "dedicated workers, no outage");
        assert!(report.merges_completed > 0);
        assert!(!report.merged_files.is_empty());
        // Every tasklet's output landed inside some merged file.
        let merged_bytes: u64 = report.merged_files.iter().map(|m| m.1).sum();
        assert_eq!(merged_bytes, total_tasklets * 12_000_000);
        assert!(report.peak_concurrency > 1.0);
        assert!(report.events_delivered > 0);
        assert!(report.dead_letters.is_empty(), "no retry budget configured");
    }

    #[test]
    fn sequential_merge_runs_after_processing() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Sequential,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some());
        assert!(report.merges_completed > 0);
        // Sequential: no merge completes before the last analysis task.
        let analysis = report.analysis_done.sums();
        let merges = report.merge_done.sums();
        let last_analysis = analysis.iter().rposition(|&c| c > 0.0).unwrap();
        let first_merge = merges.iter().position(|&c| c > 0.0).unwrap();
        assert!(
            first_merge >= last_analysis,
            "first merge bin {first_merge} vs last analysis bin {last_analysis}"
        );
    }

    #[test]
    fn hadoop_merge_completes() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Hadoop,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some());
        assert!(report.merges_completed > 0);
        assert!(report
            .merged_files
            .iter()
            .all(|(n, _)| n.starts_with("merged_h")));
    }

    #[test]
    fn interleaved_finishes_no_later_than_sequential() {
        let run = |mode| {
            let (cfg, params, wfs) = small_setup(
                mode,
                AvailabilityModel::Dedicated,
                OutageSchedule::none(),
                40,
            );
            ClusterSim::run(cfg, params, wfs).finished_at.unwrap()
        };
        let ts = run(MergeMode::Sequential);
        let ti = run(MergeMode::Interleaved);
        assert!(
            ti <= ts,
            "interleaved {ti:?} should not lose to sequential {ts:?}"
        );
    }

    #[test]
    fn evictions_cause_retries_but_work_completes() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Exponential {
                mean: SimDuration::from_hours(3),
            },
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.evictions > 0, "3h mean lifetime must evict someone");
        assert!(report.finished_at.is_some(), "work still completes");
        assert!(report
            .worker_log
            .spans()
            .iter()
            .any(|s| s.reason == LeaveReason::Evicted));
    }

    /// Regression for a latent single-pool assumption: share-cap
    /// preemption reclaims cores in arbitrary amounts, but whole workers
    /// die. Without handing the difference back, the pool's `ours`
    /// ledger drifts above what the worker table actually holds, and a
    /// tight cap then pins idle capacity at zero with no live workers —
    /// the tail of the workload starves forever. Oscillating the cap by
    /// non-worker-multiples and then clamping it near one worker's width
    /// reproduces the drift; the run must still finish.
    #[test]
    fn share_cap_preemption_keeps_pool_ledger_in_sync() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows = vec![crate::config::WorkflowConfig::simulation("gen")];
        cfg.workers.target_cores = 48;
        cfg.workers.cores_per_worker = 4;
        cfg.seed = 9;
        let wf = Workflow::simulation(&cfg.workflows[0], 300, 0);
        let params = SimParams {
            pool: PoolConfig {
                total_cores: 96,
                owner_mean: 0.0,
                reversion: 1.0,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(48),
            ..SimParams::default()
        };
        let sim = ClusterSim::new(cfg, params, vec![wf]);
        let mut eng = Engine::new(sim);
        eng.prime(SimDuration::ZERO, Ev::Start);
        let round = SimDuration::from_mins(5);
        let mut deadline = SimTime::ZERO;
        for i in 0..(48 * 12) {
            // A staircase of 2-core cuts against 4-core workers: each
            // step reclaims 2 cores from the pool ledger but kills a
            // whole worker, so without the hand-back the ledger drifts
            // 2 cores above the table per step. By the time the cap
            // floors at 12 the drift covers the whole cap: the pool
            // believes it is full while zero workers remain, no claim
            // ever succeeds again, and the workload starves.
            let cap = 48u32.saturating_sub(2 * i as u32).max(12);
            eng.model_mut().set_core_cap(cap);
            deadline += round;
            eng.run_until(deadline);
            if eng.model().done() {
                break;
            }
        }
        assert!(
            eng.model().is_finished(),
            "workload starved under an oscillating share cap"
        );
    }

    #[test]
    fn outage_produces_failure_burst() {
        let outage = OutageSchedule::new(vec![simnet::outage::Outage::blackout(
            SimTime::ZERO + SimDuration::from_mins(70),
            SimTime::ZERO + SimDuration::from_mins(130),
        )]);
        // Enough files that dispatches continue past the first task wave:
        // the second wave's stage-ins land inside the blackout window.
        // (Merge tasks no longer stream over the WAN, so the burst must
        // come from analysis staging.)
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            outage,
            360,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(
            report.tasks_failed > 0,
            "blackout must fail stage-ins: {report:?}"
        );
        assert!(
            report.timeline.failure_events().iter().any(|(t, code)| {
                *code == wqueue::task::FailureCode::StageIn
                    && t.as_hours_f64() >= 70.0 / 60.0
                    && t.as_hours_f64() <= 135.0 / 60.0
            }),
            "failures should cluster in the outage window"
        );
        assert!(report.finished_at.is_some(), "recovers after the outage");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let mk = || {
            small_setup(
                MergeMode::Interleaved,
                AvailabilityModel::notre_dame(),
                OutageSchedule::none(),
                20,
            )
        };
        let (c1, p1, w1) = mk();
        let (c2, p2, w2) = mk();
        let a = ClusterSim::run(c1, p1, w1);
        let b = ClusterSim::run(c2, p2, w2);
        assert_eq!(a.tasks_completed, b.tasks_completed);
        assert_eq!(a.tasks_failed, b.tasks_failed);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn accounting_dominated_by_cpu_when_healthy() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        let table = report.accounting.table();
        let cpu_frac = table[0].2;
        assert!(cpu_frac > 0.4, "cpu fraction {cpu_frac}");
        let total: f64 = table.iter().map(|r| r.1).sum();
        assert!((report.accounting.total() - total).abs() < 1e-9);
    }

    #[test]
    fn dashboard_credits_lobster() {
        let (cfg, params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report
            .dashboard
            .iter()
            .any(|(site, bytes)| site.contains("Lobster") && *bytes > 0.0));
    }

    #[test]
    fn simulation_workload_uses_chirp_not_wan() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows = vec![WorkflowConfig::simulation("gen")];
        cfg.workers.target_cores = 32;
        cfg.workers.cores_per_worker = 4;
        cfg.merge = MergeMode::Interleaved;
        cfg.merge_target_bytes = 100_000_000;
        let wf = Workflow::simulation(&cfg.workflows[0], 500, 5_000_000);
        let params = SimParams {
            availability: AvailabilityModel::Dedicated,
            horizon: SimDuration::from_hours(200),
            pool: PoolConfig {
                total_cores: 100,
                owner_mean: 0.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            ..SimParams::default()
        };
        let report = ClusterSim::run(cfg, params, vec![wf]);
        assert!(report.finished_at.is_some(), "{report:?}");
        // No WAN consumption: everything moved through Chirp.
        assert_eq!(lobster_wan_bytes(&report), 0.0);
    }

    #[test]
    fn adaptive_sizer_stays_in_bounds() {
        let (cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Exponential {
                mean: SimDuration::from_hours(2),
            },
            OutageSchedule::none(),
            20,
        );
        params.adaptive = true;
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some());
        assert!((1..=60).contains(&report.final_task_size));
    }

    /// A squid fault aimed past the deployed set is a configuration error,
    /// not a silently inert fault.
    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn squid_fault_index_out_of_range_is_rejected() {
        let (cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            20,
        );
        let deployed = cfg.infra.n_squids as usize;
        params.faults = FaultPlan::new(vec![Fault::new(
            FaultTarget::Squid { index: deployed },
            OutageSchedule::new(vec![Outage::blackout(mins(10), mins(20))]),
        )]);
        ClusterSim::run(cfg, params, wfs);
    }

    /// A WAN blackout spanning the horizon pins every in-flight stream
    /// forever under the legacy (watchdog-free) policy: the run never
    /// finishes, yet nothing is ever *reported* failed.
    #[test]
    fn wan_blackout_without_watchdog_hangs_to_horizon() {
        let (cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            120,
        );
        // ~1 MB/s per stream: a 1.5 GB task input takes ~25 min, so the
        // first wave's streams are mid-flight when the fault lands.
        params.wan_stream_cap = 1.0e6;
        params.faults = FaultPlan::new(vec![Fault::new(
            FaultTarget::Federation,
            OutageSchedule::new(vec![Outage::blackout(mins(30), mins(20 * 60))]),
        )]);
        params.horizon = SimDuration::from_hours(6);
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_none(), "stuck streams pin the run");
        assert_eq!(report.accounting.watchdog_aborts, 0);
        assert_eq!(report.tasks_failed, 0, "nothing even reports a failure");
    }

    /// Same blackout, but a StageIn watchdog deadline plus a retry budget
    /// kills the stuck streams, backs off through the window, and retries
    /// them to success once the WAN returns.
    #[test]
    fn stage_in_watchdog_rescues_streams_from_blackout() {
        let (mut cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            120,
        );
        params.wan_stream_cap = 1.0e6;
        params.faults = FaultPlan::new(vec![Fault::new(
            FaultTarget::Federation,
            OutageSchedule::new(vec![Outage::blackout(mins(30), mins(120))]),
        )]);
        cfg.retry.max_attempts = Some(50);
        cfg.retry.deadlines.stage_in = Some(SimDuration::from_mins(30));
        cfg.retry.requeue = Backoff {
            base: SimDuration::from_mins(5),
            factor: 2.0,
            max: SimDuration::from_mins(30),
            jitter: 0.0,
        };
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some(), "{report:?}");
        assert!(report.accounting.watchdog_aborts > 0, "{report:?}");
        assert!(report
            .timeline
            .watchdog_events()
            .iter()
            .any(|(_, s)| *s == Segment::StageIn));
        assert!(report.accounting.retries > 0);
        assert!(report.accounting.backoff_hours > 0.0);
        assert!(report.dead_letters.is_empty(), "budget of 50 is plenty");
    }

    /// A WAN fault outliving the retry budget lands the unluckly tasks in
    /// the dead-letter ledger; the run still completes, merging what did
    /// finish, and the accounting totals reconcile with the ledger.
    #[test]
    fn exhausted_retry_budget_lands_in_dead_letter_ledger() {
        let (mut cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            360,
        );
        let total_tasklets = wfs[0].n_tasklets();
        params.faults = FaultPlan::new(vec![Fault::new(
            FaultTarget::Federation,
            OutageSchedule::new(vec![Outage::blackout(mins(30), mins(20 * 60))]),
        )]);
        cfg.retry.max_attempts = Some(3);
        cfg.retry.requeue = Backoff::fixed(SimDuration::from_mins(10));
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some(), "dead-lettering unblocks");
        assert!(!report.dead_letters.is_empty(), "{report:?}");
        for d in &report.dead_letters {
            assert_eq!(d.code, wqueue::task::FailureCode::StageIn);
            assert_eq!(d.attempts, 3);
        }
        assert_eq!(
            report.accounting.dead_lettered,
            report.dead_letters.len() as u64
        );
        // Every tasklet is either merged or accounted dead.
        let merged_bytes: u64 = report.merged_files.iter().map(|m| m.1).sum();
        let dead_units: u64 = report.dead_letters.iter().map(|d| d.units).sum();
        assert_eq!(merged_bytes / 12_000_000 + dead_units, total_tasklets);
        let ledgered: f64 = report.timeline.dead_letters().iter().sum();
        assert_eq!(ledgered as u64, report.accounting.dead_lettered);
    }

    /// Black-holed squids stall alien-cache fills mid-flight; the EnvInit
    /// watchdog reclaims the slots, the per-worker slot-hold backoff
    /// spaces the retries, and the run recovers when the proxies return.
    #[test]
    fn squid_blackhole_recovers_via_env_watchdog_and_slot_holds() {
        let (mut cfg, mut params, wfs) = small_setup(
            MergeMode::Interleaved,
            AvailabilityModel::Dedicated,
            OutageSchedule::none(),
            120,
        );
        let windows = || OutageSchedule::new(vec![Outage::blackout(mins(5), mins(60))]);
        params.faults = FaultPlan::new(vec![
            Fault::new(FaultTarget::Squid { index: 0 }, windows()),
            Fault::new(FaultTarget::Squid { index: 1 }, windows()),
        ]);
        // A healthy cold fill takes ~15-20 min; 45 min only trips when
        // the fill is actually stalled by the fault window. A bounded
        // budget keeps the same task identity across retries (the
        // unbounded policy re-covers tasklets with fresh tasks instead).
        cfg.retry.max_attempts = Some(20);
        cfg.retry.deadlines.env_setup = Some(SimDuration::from_mins(45));
        cfg.retry.slot_hold = Backoff {
            base: SimDuration::from_mins(5),
            factor: 2.0,
            max: SimDuration::from_mins(30),
            jitter: 0.0,
        };
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some(), "{report:?}");
        assert!(report
            .timeline
            .watchdog_events()
            .iter()
            .any(|(_, s)| *s == Segment::EnvInit));
        assert!(report
            .timeline
            .failure_events()
            .iter()
            .any(|(_, c)| *c == wqueue::task::FailureCode::EnvSetup));
        assert!(report.accounting.retries > 0);
        assert!(report.accounting.backoff_hours > 0.0, "slot holds accrue");
    }

    /// A black-holed Chirp server fails both ends of a simulation task's
    /// I/O — pile-up stage-in and output stage-out — and the retry policy
    /// rides out the window without dead-lettering anything.
    #[test]
    fn chirp_blackhole_fails_stage_in_and_out_then_recovers() {
        let mut cfg = LobsterConfig::default();
        cfg.workflows = vec![WorkflowConfig::simulation("gen")];
        cfg.workers.target_cores = 32;
        cfg.workers.cores_per_worker = 4;
        cfg.merge = MergeMode::Interleaved;
        cfg.merge_target_bytes = 100_000_000;
        cfg.retry.max_attempts = Some(50);
        cfg.retry.requeue = Backoff::fixed(SimDuration::from_mins(5));
        let wf = Workflow::simulation(&cfg.workflows[0], 500, 5_000_000);
        let params = SimParams {
            availability: AvailabilityModel::Dedicated,
            horizon: SimDuration::from_hours(200),
            pool: PoolConfig {
                total_cores: 100,
                owner_mean: 0.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            faults: FaultPlan::new(vec![Fault::new(
                FaultTarget::Chirp,
                OutageSchedule::new(vec![Outage::blackout(mins(30), mins(150))]),
            )]),
            ..SimParams::default()
        };
        let report = ClusterSim::run(cfg, params, vec![wf]);
        assert!(report.finished_at.is_some(), "{report:?}");
        let codes: BTreeSet<wqueue::task::FailureCode> = report
            .timeline
            .failure_events()
            .iter()
            .map(|(_, c)| *c)
            .collect();
        assert!(
            codes.contains(&wqueue::task::FailureCode::StageIn),
            "{codes:?}"
        );
        assert!(
            codes.contains(&wqueue::task::FailureCode::StageOut),
            "{codes:?}"
        );
        assert!(report.dead_letters.is_empty());
    }

    /// Regression (merge routing): merge inputs come off local storage
    /// via Chirp, so WAN consumption must not grow with the number of
    /// merges — only analysis staging touches the federation.
    #[test]
    fn merge_inputs_do_not_cross_the_wan() {
        let run = |merge_target_bytes: u64| {
            let (mut cfg, params, wfs) = small_setup(
                MergeMode::Interleaved,
                AvailabilityModel::Dedicated,
                OutageSchedule::none(),
                20,
            );
            cfg.merge_target_bytes = merge_target_bytes;
            ClusterSim::run(cfg, params, wfs)
        };
        let few_merges = run(400_000_000);
        let many_merges = run(100_000_000);
        assert!(many_merges.merges_completed > few_merges.merges_completed);
        let wan_few = lobster_wan_bytes(&few_merges);
        let wan_many = lobster_wan_bytes(&many_merges);
        assert!(wan_few > 0.0, "analysis streaming does use the WAN");
        assert_eq!(wan_few, wan_many, "merge count must not move WAN bytes");
    }

    /// Regression (multi-workflow sizing): each workflow is carved into
    /// tasks with *its own* `tasklets_per_task`, not workflow 0's.
    #[test]
    fn per_workflow_task_sizing() {
        let mut cfg = LobsterConfig::default();
        cfg.workers.target_cores = 64;
        cfg.workers.cores_per_worker = 4;
        cfg.merge = MergeMode::Interleaved;
        cfg.merge_target_bytes = 200_000_000;
        cfg.seed = 42;
        cfg.workflows = vec![
            WorkflowConfig::analysis("wf-small", "/DS/A"),
            WorkflowConfig::analysis("wf-large", "/DS/B"),
        ];
        cfg.workflows[0].tasklets_per_task = 4;
        cfg.workflows[1].tasklets_per_task = 10;
        let spec = DatasetSpec {
            n_files: 10,
            mean_file_bytes: 500_000_000,
            events_per_lumi: 100,
            lumis_per_file: 50,
        };
        let mut dbs = Dbs::new();
        dbs.generate("/DS/A", spec, 7);
        dbs.generate("/DS/B", spec, 8);
        let wfs = vec![
            Workflow::from_dataset(&cfg.workflows[0], dbs.query("/DS/A").unwrap()),
            Workflow::from_dataset(&cfg.workflows[1], dbs.query("/DS/B").unwrap()),
        ];
        // 10 files x 50 lumis = 500 lumis = 20 tasklets per workflow.
        assert_eq!(wfs[0].n_tasklets(), 20);
        assert_eq!(wfs[1].n_tasklets(), 20);
        let params = SimParams {
            availability: AvailabilityModel::Dedicated,
            pool: PoolConfig {
                total_cores: 200,
                owner_mean: 20.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(96),
            ..SimParams::default()
        };
        let report = ClusterSim::run(cfg, params, wfs);
        assert!(report.finished_at.is_some(), "{report:?}");
        // ceil(20/4) + ceil(20/10): sizing each workflow by workflow 0's
        // knob would instead yield 5 + 5 = 10 tasks.
        assert_eq!(report.tasks_completed, 5 + 2, "{report:?}");
        let merged_bytes: u64 = report.merged_files.iter().map(|m| m.1).sum();
        assert_eq!(merged_bytes, 40 * 12_000_000);
    }
}
