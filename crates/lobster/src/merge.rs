//! Output merging (§4.4, Figure 7).
//!
//! Tuning task sizes for eviction tolerance leaves "significantly more and
//! smaller output files" (10–100 MB) than regular CMS workflows want;
//! Lobster merges them into 3–4 GB files. Three modes:
//!
//! * **Sequential** — after all analysis tasks finish, group outputs by
//!   size and run merge tasks through the same queue. Slowest; long tail.
//! * **Hadoop** — run the merge inside the storage cluster as a
//!   Map-Reduce job (map groups file names; reducers concatenate).
//! * **Interleaved** — once a workflow is >10 % processed, create merge
//!   tasks as soon as enough finished outputs exist to fill one target-
//!   size file. Outputs merge exactly once. Less resource-efficient but
//!   fastest to completion; the mode Lobster uses in production.

use gridstore::hdfs::Hdfs;
use gridstore::mapreduce::MapReduce;
use serde::{Deserialize, Serialize};
use wqueue::task::TaskId;

/// The three merging modes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MergeMode {
    /// Merge after all processing completes, via merge tasks.
    Sequential,
    /// Merge inside the Hadoop cluster via Map-Reduce.
    Hadoop,
    /// Merge concurrently with processing.
    Interleaved,
}

impl MergeMode {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MergeMode::Sequential => "sequential",
            MergeMode::Hadoop => "hadoop",
            MergeMode::Interleaved => "interleaved",
        }
    }
}

/// A planned merge: which outputs combine into one file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeGroup {
    /// Inputs as `(producing task, bytes)`.
    pub inputs: Vec<(TaskId, u64)>,
}

impl MergeGroup {
    /// Total bytes of the merged file.
    pub fn bytes(&self) -> u64 {
        self.inputs.iter().map(|i| i.1).sum()
    }

    /// Number of input files.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// A group always holds at least one input.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Groups outputs into merge tasks of a target size.
#[derive(Clone, Copy, Debug)]
pub struct MergePlanner {
    target_bytes: u64,
    /// Interleaved mode only merges once this fraction of the workflow
    /// has been processed (paper: 10 %).
    progress_gate: f64,
}

impl MergePlanner {
    /// Planner targeting `target_bytes` per merged file.
    pub fn new(target_bytes: u64) -> Self {
        assert!(target_bytes > 0);
        MergePlanner {
            target_bytes,
            progress_gate: 0.10,
        }
    }

    /// The merged-file size target.
    pub fn target_bytes(&self) -> u64 {
        self.target_bytes
    }

    /// Group *all* outputs (sequential / hadoop, end-of-run): greedy
    /// accumulation to the target; the final group may be smaller.
    pub fn plan_full(&self, outputs: &[(TaskId, u64)]) -> Vec<MergeGroup> {
        let mut groups = Vec::new();
        let mut current: Vec<(TaskId, u64)> = Vec::new();
        let mut acc = 0u64;
        for &(id, bytes) in outputs {
            current.push((id, bytes));
            acc += bytes;
            if acc >= self.target_bytes {
                groups.push(MergeGroup {
                    inputs: std::mem::take(&mut current),
                });
                acc = 0;
            }
        }
        if !current.is_empty() {
            groups.push(MergeGroup { inputs: current });
        }
        groups
    }

    /// Interleaved planning: given the currently unmerged outputs and the
    /// workflow's processed fraction, emit only *full* groups (≥ target),
    /// leaving the remainder unmerged until more outputs arrive. Before
    /// the 10 % gate nothing is merged. Set `final_flush` at end of
    /// processing to also emit the trailing partial group.
    pub fn plan_ready(
        &self,
        outputs: &[(TaskId, u64)],
        progress: f64,
        final_flush: bool,
    ) -> Vec<MergeGroup> {
        if progress < self.progress_gate && !final_flush {
            return Vec::new();
        }
        let mut groups = self.plan_full(outputs);
        if !final_flush {
            // Drop the trailing partial group — it waits for more outputs.
            if let Some(last) = groups.last() {
                if last.bytes() < self.target_bytes {
                    groups.pop();
                }
            }
        }
        groups
    }
}

/// Execute merges inside the storage cluster as a real Map-Reduce job
/// (the §4.4 Hadoop mode): inputs are HDFS file names; each reducer
/// concatenates its group's contents and writes the merged file back,
/// deleting the small inputs. Returns the merged file names.
pub fn merge_in_hadoop(
    hdfs: &Hdfs,
    engine: &MapReduce,
    groups: &[(String, Vec<String>)],
) -> Vec<String> {
    // Map: (target, input name) pairs; Reduce: concatenate in input order.
    let inputs: Vec<(String, String, usize)> = groups
        .iter()
        .flat_map(|(target, names)| {
            names
                .iter()
                .enumerate()
                .map(move |(i, n)| (target.clone(), n.clone(), i))
        })
        .collect();
    let merged = engine.run(
        inputs,
        |(target, name, order)| vec![(target, (order, name))],
        |_target, mut pieces: Vec<(usize, String)>| {
            pieces.sort_by_key(|p| p.0);
            let mut out = Vec::new();
            for (_, name) in &pieces {
                if let Some(data) = hdfs.read(name) {
                    out.extend_from_slice(&data);
                }
            }
            (out, pieces.into_iter().map(|p| p.1).collect::<Vec<_>>())
        },
    );
    let mut names = Vec::new();
    for (target, (data, consumed)) in merged {
        hdfs.put_bytes(&target, data);
        for name in consumed {
            hdfs.delete(&name);
        }
        names.push(target);
    }
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs(sizes: &[u64]) -> Vec<(TaskId, u64)> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (TaskId(i as u64), s))
            .collect()
    }

    #[test]
    fn plan_full_covers_everything_once() {
        let outs = outputs(&[40, 40, 40, 40, 25]);
        let groups = MergePlanner::new(100).plan_full(&outs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].bytes(), 120);
        assert_eq!(groups[1].bytes(), 65, "trailing partial group kept");
        let total: usize = groups.iter().map(MergeGroup::len).sum();
        assert_eq!(total, 5);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for (id, _) in &g.inputs {
                assert!(seen.insert(*id));
            }
        }
    }

    #[test]
    fn plan_full_empty_input() {
        assert!(MergePlanner::new(100).plan_full(&[]).is_empty());
    }

    #[test]
    fn interleaved_respects_progress_gate() {
        let p = MergePlanner::new(100);
        let outs = outputs(&[60, 60]);
        assert!(
            p.plan_ready(&outs, 0.05, false).is_empty(),
            "below 10% gate"
        );
        let ready = p.plan_ready(&outs, 0.20, false);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].bytes(), 120);
    }

    #[test]
    fn interleaved_holds_back_partial_groups() {
        let p = MergePlanner::new(100);
        let outs = outputs(&[60, 30]); // only 90 bytes — not a full file yet
        assert!(p.plan_ready(&outs, 0.5, false).is_empty());
        // final flush emits the remainder
        let flushed = p.plan_ready(&outs, 0.5, true);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].bytes(), 90);
    }

    #[test]
    fn final_flush_overrides_gate() {
        let p = MergePlanner::new(100);
        let outs = outputs(&[10]);
        assert_eq!(p.plan_ready(&outs, 0.0, true).len(), 1);
    }

    #[test]
    fn single_oversize_output_is_its_own_group() {
        let groups = MergePlanner::new(100).plan_full(&outputs(&[500]));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 1);
    }

    #[test]
    fn hadoop_merge_concatenates_and_cleans_up() {
        let hdfs = Hdfs::new(4, 2);
        for i in 0..6u8 {
            hdfs.put_bytes(&format!("/out/small_{i}.root"), vec![i; 10]);
        }
        let groups = vec![
            (
                "/out/merged_0.root".to_string(),
                (0..3).map(|i| format!("/out/small_{i}.root")).collect(),
            ),
            (
                "/out/merged_1.root".to_string(),
                (3..6).map(|i| format!("/out/small_{i}.root")).collect(),
            ),
        ];
        let merged = merge_in_hadoop(&hdfs, &MapReduce::new(4), &groups);
        assert_eq!(merged, vec!["/out/merged_0.root", "/out/merged_1.root"]);
        let m0 = hdfs.read("/out/merged_0.root").unwrap();
        assert_eq!(m0.len(), 30);
        assert_eq!(&m0[0..10], &[0; 10]);
        assert_eq!(&m0[10..20], &[1; 10]);
        // Small files deleted; only merged files remain.
        assert_eq!(hdfs.file_count(), 2);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(MergeMode::Sequential.label(), "sequential");
        assert_eq!(MergeMode::Hadoop.label(), "hadoop");
        assert_eq!(MergeMode::Interleaved.label(), "interleaved");
    }
}
