//! Task size selection — the Monte Carlo of §4.1 (Figure 3).
//!
//! The paper's model, reproduced with its published parameters:
//!
//! * 100 000 tasklets to process on 8 000 workers;
//! * per-worker overhead 5 minutes (cache population etc.), incurred at
//!   worker start and after every eviction;
//! * per-task overhead 20 minutes (dispatch, stage-in/out);
//! * tasklet completion times Gaussian with μ = 10 min, σ = 5 min;
//! * a worker survival time is drawn per worker; when cumulative uptime
//!   exceeds it the worker is "evicted": everything since the start of
//!   the running task is lost, a new survival time is drawn, and the
//!   worker pays the startup overhead again.
//!
//! Efficiency is effective processing time over total time. Three eviction
//! scenarios are compared: none, constant hazard (0.1/hour), and the
//! observed availability model. Both eviction scenarios peak near 70 % at
//! ≈ 1-hour tasks — "the upper limit of achievable efficiency under
//! non-dedicated circumstances".

use batchsim::availability::EvictionScenario;
use serde::Serialize;
use simkit::dist::{Dist, TruncatedNormal};
use simkit::rng::SimRng;
use simkit::time::SimDuration;

/// Model parameters (defaults are the paper's).
#[derive(Clone, Debug)]
pub struct TaskSizeConfig {
    /// Tasklets to process in total.
    pub total_tasklets: u64,
    /// Workers drawing from the pool.
    pub workers: u32,
    /// Overhead at worker start / restart after eviction.
    pub per_worker_overhead: SimDuration,
    /// Overhead per task.
    pub per_task_overhead: SimDuration,
    /// Mean tasklet CPU time (minutes).
    pub tasklet_mean_mins: f64,
    /// Tasklet CPU time spread (minutes).
    pub tasklet_sigma_mins: f64,
}

impl Default for TaskSizeConfig {
    fn default() -> Self {
        TaskSizeConfig {
            total_tasklets: 100_000,
            workers: 8_000,
            per_worker_overhead: SimDuration::from_mins(5),
            per_task_overhead: SimDuration::from_mins(20),
            tasklet_mean_mins: 10.0,
            tasklet_sigma_mins: 5.0,
        }
    }
}

/// One simulated efficiency point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EfficiencyPoint {
    /// Average task length in hours (tasklets × mean tasklet time).
    pub task_hours: f64,
    /// Tasklets grouped per task.
    pub tasklets_per_task: u32,
    /// Effective processing seconds.
    pub effective_secs: f64,
    /// Total consumed seconds (overheads and losses included).
    pub total_secs: f64,
    /// Efficiency = effective / total.
    pub efficiency: f64,
    /// Evictions observed.
    pub evictions: u64,
}

/// Simulate one task size under one eviction scenario.
pub fn simulate(
    cfg: &TaskSizeConfig,
    scenario: &EvictionScenario,
    tasklets_per_task: u32,
    seed: u64,
) -> EfficiencyPoint {
    assert!(tasklets_per_task >= 1);
    assert!(cfg.workers >= 1);
    let mut rng = SimRng::new(seed);
    let tasklet_dist = TruncatedNormal::new(
        cfg.tasklet_mean_mins,
        cfg.tasklet_sigma_mins,
        0.5, // a tasklet takes at least 30 s
    );

    struct Worker {
        /// Uptime consumed in the current availability interval.
        uptime: SimDuration,
        /// Survival budget of the current interval.
        survival: SimDuration,
        started: bool,
    }
    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|_| Worker {
            uptime: SimDuration::ZERO,
            survival: SimDuration::ZERO,
            started: false,
        })
        .collect();

    let mut remaining = cfg.total_tasklets;
    let mut effective = SimDuration::ZERO;
    let mut total = SimDuration::ZERO;
    let mut evictions = 0u64;

    // Round-robin task assignment across the worker fleet until the
    // tasklet pool drains. Workers are independent streams; aggregate
    // efficiency is the ratio of summed times.
    let mut w = 0usize;
    while remaining > 0 {
        let idx = w % workers.len();
        let worker = &mut workers[idx];
        w += 1;

        if !worker.started {
            worker.started = true;
            worker.survival = scenario.sample_survival(&mut rng);
            worker.uptime = cfg.per_worker_overhead;
            total += cfg.per_worker_overhead;
        }

        let n = (tasklets_per_task as u64).min(remaining) as u32;
        let mut work = SimDuration::ZERO;
        for _ in 0..n {
            work += tasklet_dist.sample_mins(&mut rng);
        }
        let task_time = cfg.per_task_overhead + work;

        if worker.uptime + task_time > worker.survival {
            // Evicted mid-task: time up to the survival boundary is spent
            // and lost; tasklets return to the pool; worker restarts.
            let spent = worker.survival.saturating_sub(worker.uptime);
            total += spent;
            evictions += 1;
            worker.survival = scenario.sample_survival(&mut rng);
            worker.uptime = cfg.per_worker_overhead;
            total += cfg.per_worker_overhead;
        } else {
            worker.uptime += task_time;
            total += task_time;
            effective += work;
            remaining -= n as u64;
        }
    }

    let task_hours = tasklets_per_task as f64 * cfg.tasklet_mean_mins / 60.0;
    let (e, t) = (effective.as_secs_f64(), total.as_secs_f64());
    EfficiencyPoint {
        task_hours,
        tasklets_per_task,
        effective_secs: e,
        total_secs: t,
        efficiency: if t > 0.0 { e / t } else { 0.0 },
        evictions,
    }
}

/// Sweep task lengths (hours) for a scenario, as Figure 3 does.
pub fn sweep(
    cfg: &TaskSizeConfig,
    scenario: &EvictionScenario,
    task_hours: &[f64],
    seed: u64,
) -> Vec<EfficiencyPoint> {
    task_hours
        .iter()
        .map(|&h| {
            let n = ((h * 60.0 / cfg.tasklet_mean_mins).round() as u32).max(1);
            simulate(cfg, scenario, n, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchsim::availability::AvailabilityModel;

    /// Smaller pool for fast tests; same shape.
    fn small() -> TaskSizeConfig {
        TaskSizeConfig {
            total_tasklets: 5_000,
            workers: 400,
            ..TaskSizeConfig::default()
        }
    }

    #[test]
    fn no_eviction_efficiency_approaches_cpu_fraction() {
        // 6 tasklets ≈ 1 h CPU per task; overhead 20 min → ceiling 0.75.
        let p = simulate(&small(), &EvictionScenario::None, 6, 1);
        assert_eq!(p.evictions, 0);
        assert!(
            (p.efficiency - 0.75).abs() < 0.02,
            "eff {} ≈ 60/80",
            p.efficiency
        );
    }

    #[test]
    fn tiny_tasks_are_overhead_dominated() {
        let p = simulate(&small(), &EvictionScenario::None, 1, 2);
        // 10 min work per 20 min overhead → ~1/3.
        assert!(p.efficiency < 0.40, "eff {}", p.efficiency);
    }

    #[test]
    fn long_tasks_suffer_under_eviction() {
        let hz = EvictionScenario::ConstantHazard { per_hour: 0.1 };
        let short = simulate(&small(), &hz, 6, 3); // ~1 h
        let long = simulate(&small(), &hz, 60, 3); // ~10 h
        assert!(long.evictions > 0);
        assert!(
            short.efficiency > long.efficiency,
            "short {} vs long {}",
            short.efficiency,
            long.efficiency
        );
    }

    #[test]
    fn figure3_peak_near_one_hour_at_70_percent() {
        let cfg = small();
        let hz = EvictionScenario::ConstantHazard { per_hour: 0.1 };
        let hours = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
        let pts = sweep(&cfg, &hz, &hours, 4);
        let best = pts
            .iter()
            .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).unwrap())
            .unwrap();
        assert!(
            (0.5..=2.0).contains(&best.task_hours),
            "peak at {}h",
            best.task_hours
        );
        assert!(
            (0.60..=0.78).contains(&best.efficiency),
            "peak efficiency {}",
            best.efficiency
        );
    }

    #[test]
    fn observed_and_constant_similar_at_peak() {
        // §4.1: "This simulation is not sensitive to differences between
        // the observed probability and a constant one."
        let cfg = small();
        let c = simulate(
            &cfg,
            &EvictionScenario::ConstantHazard { per_hour: 0.1 },
            6,
            5,
        );
        let o = simulate(
            &cfg,
            &EvictionScenario::Observed(AvailabilityModel::notre_dame()),
            6,
            5,
        );
        assert!(
            (c.efficiency - o.efficiency).abs() < 0.12,
            "{} vs {}",
            c.efficiency,
            o.efficiency
        );
    }

    #[test]
    fn no_eviction_beats_eviction_everywhere() {
        let cfg = small();
        for &n in &[3u32, 12, 30] {
            let none = simulate(&cfg, &EvictionScenario::None, n, 6);
            let hz = simulate(
                &cfg,
                &EvictionScenario::ConstantHazard { per_hour: 0.1 },
                n,
                6,
            );
            assert!(none.efficiency >= hz.efficiency - 0.01, "n={n}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = small();
        let a = simulate(
            &cfg,
            &EvictionScenario::ConstantHazard { per_hour: 0.1 },
            6,
            7,
        );
        let b = simulate(
            &cfg,
            &EvictionScenario::ConstantHazard { per_hour: 0.1 },
            6,
            7,
        );
        assert_eq!(a.efficiency, b.efficiency);
        assert_eq!(a.evictions, b.evictions);
    }

    #[test]
    fn all_tasklets_accounted() {
        let cfg = TaskSizeConfig {
            total_tasklets: 997,
            workers: 13,
            ..small()
        };
        let p = simulate(&cfg, &EvictionScenario::None, 10, 8);
        // effective time ≈ 997 × ~10 min (truncation pulls mean slightly up)
        let mins = p.effective_secs / 60.0;
        assert!(
            (mins / 997.0 - 10.0).abs() < 0.8,
            "mean tasklet {} min",
            mins / 997.0
        );
    }
}
