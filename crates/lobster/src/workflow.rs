//! Work decomposition: dataset → tasklets → tasks (§4.1, §4.2).
//!
//! "A tasklet is the smallest element into which the overall workflow can
//! be divided and still be submitted as a self-contained piece of work
//! ... The complete list of tasklets is created at the beginning of the
//! workflow. A task is a group of tasklets that are assigned to run on a
//! single worker core."
//!
//! For a data-processing workflow the tasklet inventory derives from the
//! DBS dataset (luminosity sections grouped into fixed spans); for a
//! simulation workflow it is simply a count of event batches to generate.

use crate::config::{WorkflowConfig, WorkloadKind};
use gridstore::dbs::Dataset;
use simkit::dist::{Dist, TruncatedNormal};
use simkit::rng::SimRng;
use simkit::time::SimDuration;

/// A fully decomposed workflow: the tasklet inventory plus the per-tasklet
/// cost model.
#[derive(Clone, Debug)]
pub struct Workflow {
    /// Workflow label.
    pub name: String,
    /// Workload profile.
    pub kind: WorkloadKind,
    n_tasklets: u64,
    input_bytes_per_tasklet: u64,
    output_bytes_per_tasklet: u64,
    cpu_mins_mean: f64,
    cpu_mins_sigma: f64,
}

/// Lumi sections grouped into one tasklet by default.
pub const LUMIS_PER_TASKLET: u32 = 25;

impl Workflow {
    /// Decompose a data-processing workflow over a DBS dataset.
    pub fn from_dataset(cfg: &WorkflowConfig, dataset: &Dataset) -> Self {
        assert_eq!(cfg.kind, WorkloadKind::DataProcessing);
        let total_lumis = dataset.total_lumis();
        let n_tasklets = total_lumis.div_ceil(LUMIS_PER_TASKLET as u64).max(1);
        let input_bytes_per_tasklet = dataset.total_bytes() / n_tasklets.max(1);
        Workflow {
            name: cfg.name.clone(),
            kind: cfg.kind,
            n_tasklets,
            input_bytes_per_tasklet,
            output_bytes_per_tasklet: cfg.output_bytes_per_tasklet,
            cpu_mins_mean: cfg.tasklet_mean_mins,
            cpu_mins_sigma: cfg.tasklet_sigma_mins,
        }
    }

    /// A simulation workflow of `n_tasklets` generation batches. Inputs
    /// are negligible except the pile-up overlay staged via Chirp, folded
    /// into `pileup_bytes_per_tasklet`.
    pub fn simulation(
        cfg: &WorkflowConfig,
        n_tasklets: u64,
        pileup_bytes_per_tasklet: u64,
    ) -> Self {
        assert_eq!(cfg.kind, WorkloadKind::Simulation);
        Workflow {
            name: cfg.name.clone(),
            kind: cfg.kind,
            n_tasklets: n_tasklets.max(1),
            input_bytes_per_tasklet: pileup_bytes_per_tasklet,
            output_bytes_per_tasklet: cfg.output_bytes_per_tasklet,
            cpu_mins_mean: cfg.tasklet_mean_mins,
            cpu_mins_sigma: cfg.tasklet_sigma_mins,
        }
    }

    /// Total tasklets in the inventory.
    pub fn n_tasklets(&self) -> u64 {
        self.n_tasklets
    }

    /// Input bytes a task of `n` tasklets must obtain.
    pub fn task_input_bytes(&self, n: u32) -> u64 {
        self.input_bytes_per_tasklet * n as u64
    }

    /// Output bytes a task of `n` tasklets produces.
    pub fn task_output_bytes(&self, n: u32) -> u64 {
        self.output_bytes_per_tasklet * n as u64
    }

    /// Draw the CPU time of a task of `n` tasklets (sum of per-tasklet
    /// Gaussian draws, floored at 30 s each).
    pub fn sample_task_cpu(&self, n: u32, rng: &mut SimRng) -> SimDuration {
        let dist = TruncatedNormal::new(self.cpu_mins_mean, self.cpu_mins_sigma, 0.5);
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            total += dist.sample_mins(rng);
        }
        total
    }

    /// Expected task CPU time at size `n` (for planning).
    pub fn expected_task_cpu(&self, n: u32) -> SimDuration {
        SimDuration::from_mins_f64(self.cpu_mins_mean * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridstore::dbs::{DatasetSpec, Dbs};

    fn dataset() -> Dataset {
        let mut dbs = Dbs::new();
        dbs.generate(
            "/TT/x/AOD",
            DatasetSpec {
                n_files: 100,
                mean_file_bytes: 1_000_000,
                events_per_lumi: 10,
                lumis_per_file: 50,
            },
            1,
        );
        dbs.query("/TT/x/AOD").unwrap().clone()
    }

    #[test]
    fn decomposition_counts() {
        let cfg = WorkflowConfig::analysis("tt", "/TT/x/AOD");
        let wf = Workflow::from_dataset(&cfg, &dataset());
        // 100 files × 50 lumis / 25 per tasklet = 200 tasklets.
        assert_eq!(wf.n_tasklets(), 200);
        // All dataset bytes distributed over tasklets.
        let per = wf.task_input_bytes(1);
        assert!(per > 0);
        let total_recovered = per * 200;
        let actual = dataset().total_bytes();
        assert!(total_recovered.abs_diff(actual) < actual / 100);
    }

    #[test]
    fn task_scaling() {
        let cfg = WorkflowConfig::analysis("tt", "/TT/x/AOD");
        let wf = Workflow::from_dataset(&cfg, &dataset());
        assert_eq!(wf.task_input_bytes(6), 6 * wf.task_input_bytes(1));
        assert_eq!(wf.task_output_bytes(6), 6 * cfg.output_bytes_per_tasklet);
        assert_eq!(wf.expected_task_cpu(6), SimDuration::from_mins(60));
    }

    #[test]
    fn cpu_sampling_statistics() {
        let cfg = WorkflowConfig::analysis("tt", "/TT/x/AOD");
        let wf = Workflow::from_dataset(&cfg, &dataset());
        let mut rng = SimRng::new(2);
        let n = 2_000;
        let mean_mins: f64 = (0..n)
            .map(|_| wf.sample_task_cpu(6, &mut rng).as_mins_f64())
            .sum::<f64>()
            / n as f64;
        // 6 × μ=10 min, truncation biases slightly high.
        assert!((mean_mins - 60.0).abs() < 3.0, "{mean_mins}");
    }

    #[test]
    fn simulation_workflow() {
        let cfg = WorkflowConfig::simulation("gen");
        let wf = Workflow::simulation(&cfg, 1000, 50_000_000);
        assert_eq!(wf.n_tasklets(), 1000);
        assert_eq!(wf.task_input_bytes(2), 100_000_000, "pile-up only");
        assert_eq!(wf.kind, WorkloadKind::Simulation);
    }

    #[test]
    #[should_panic]
    fn from_dataset_rejects_simulation_config() {
        let cfg = WorkflowConfig::simulation("gen");
        Workflow::from_dataset(&cfg, &dataset());
    }
}
