//! Property-based tests for the simlint lexer.
//!
//! The lexer underpins every rule, so its two contracts are pinned here:
//!
//! 1. **Round-trip without mis-spanning**: any sequence of valid tokens,
//!    rendered with arbitrary space/newline separators, lexes back to
//!    exactly those tokens — same kind, same text, and a span that points
//!    at the first character of each token.
//! 2. **Totality**: arbitrary byte soup (unterminated strings, stray
//!    quotes, broken comments) never panics, and no non-whitespace
//!    character is ever dropped or invented.

use proptest::prelude::*;
use simlint::lexer::{lex, Delim, TokKind};

/// The token vocabulary the generator draws from: (text, expected kind).
/// Every entry is single-line, so expected spans advance by `chars()`.
fn vocab(sel: u8) -> (&'static str, TokKind) {
    const TABLE: &[(&str, TokKind)] = &[
        ("foo", TokKind::Ident),
        ("bar_2", TokKind::Ident),
        ("_x", TokKind::Ident),
        ("Ev", TokKind::Ident),
        ("self", TokKind::Ident),
        ("0", TokKind::Number),
        ("42u64", TokKind::Number),
        ("3.14", TokKind::Number),
        ("2.5e-3", TokKind::Number),
        ("0x1f", TokKind::Number),
        ("1_000f64", TokKind::Number),
        ("\"abc\"", TokKind::Str),
        ("\"a\\\"b\"", TokKind::Str),
        ("r#\"raw \"q\" str\"#", TokKind::Str),
        ("b\"bytes\"", TokKind::Str),
        ("'x'", TokKind::Char),
        ("'\\n'", TokKind::Char),
        ("'a", TokKind::Lifetime),
        ("'static", TokKind::Lifetime),
        ("::", TokKind::Op),
        ("=>", TokKind::Op),
        ("+=", TokKind::Op),
        ("..=", TokKind::Op),
        ("..", TokKind::Op),
        (";", TokKind::Op),
        (",", TokKind::Op),
        (".", TokKind::Op),
        ("&", TokKind::Op),
        ("!", TokKind::Op),
        ("#", TokKind::Op),
        ("->", TokKind::Op),
        ("<<=", TokKind::Op),
        ("/* c */", TokKind::Comment),
        ("(", TokKind::Open(Delim::Paren)),
        (")", TokKind::Close(Delim::Paren)),
        ("[", TokKind::Open(Delim::Bracket)),
        ("]", TokKind::Close(Delim::Bracket)),
        ("{", TokKind::Open(Delim::Brace)),
        ("}", TokKind::Close(Delim::Brace)),
    ];
    TABLE[sel as usize % TABLE.len()].clone()
}

proptest! {
    /// Contract 1: token sequences round-trip with exact spans.
    #[test]
    fn lexer_round_trips_valid_token_sequences(
        sels in prop::collection::vec(0u8..255, 0..60),
        breaks in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        let mut source = String::new();
        let mut expected: Vec<(&str, TokKind, u32, u32)> = Vec::new();
        let mut line = 1u32;
        let mut col = 1u32;
        for (i, sel) in sels.iter().enumerate() {
            let (text, kind) = vocab(*sel);
            expected.push((text, kind, line, col));
            source.push_str(text);
            col += text.chars().count() as u32;
            // Separator: space or newline, driven by the bool stream.
            if breaks.get(i).copied().unwrap_or(false) {
                source.push('\n');
                line += 1;
                col = 1;
            } else {
                source.push(' ');
                col += 1;
            }
        }
        let tokens = lex(&source);
        prop_assert_eq!(tokens.len(), expected.len());
        for (tok, (text, kind, line, col)) in tokens.iter().zip(&expected) {
            prop_assert_eq!(&tok.text, text);
            prop_assert_eq!(&tok.kind, kind);
            prop_assert_eq!(tok.span.line, *line);
            prop_assert_eq!(tok.span.col, *col);
        }
    }

    /// Contract 2: arbitrary soup never panics, and lexing is lossless —
    /// the concatenated token texts contain exactly the source's
    /// non-whitespace characters, in order.
    #[test]
    fn lexer_is_total_and_lossless_on_arbitrary_input(
        bytes in prop::collection::vec(0u8..255, 0..300),
    ) {
        // Map bytes into a char mix rich in quotes, slashes, and hashes so
        // unterminated literals and half-open comments are common.
        let source: String = bytes
            .iter()
            .map(|b| match b % 16 {
                0 => '"',
                1 => '\'',
                2 => '/',
                3 => '*',
                4 => '#',
                5 => 'r',
                6 => 'b',
                7 => '\\',
                8 => '\n',
                9 => '.',
                10 => '(',
                11 => '}',
                12 => 'e',
                13 => '0',
                _ => char::from(*b),
            })
            .collect();
        let tokens = lex(&source);
        let joined: String = tokens.iter().map(|t| t.text.as_str()).collect();
        let a: String = source.chars().filter(|c| !c.is_whitespace()).collect();
        let b: String = joined.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(a, b);
    }
}
