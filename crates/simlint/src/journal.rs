//! `journal-coverage`: the intra-crate call-graph rule over `LobsterDb`.
//!
//! PR 3's crash-consistency contract is "replay is authoritative": every
//! mutation of journaled state goes through the single `apply(Record)`
//! mutator, so a WAL replay reconstructs the database exactly. The type
//! system cannot enforce that — any `&mut self` method can poke a field —
//! so this pass rebuilds the discipline statically:
//!
//! 1. Find every `impl LobsterDb` block and its methods.
//! 2. Compute the *replay subtree*: `apply` plus everything it reaches
//!    through `self.method(…)` calls.
//! 3. The fields the subtree writes are the *journaled* fields.
//! 4. Any other `&mut self` method that writes a journaled field, or calls
//!    into the subtree, is a finding: state is mutating outside the replay
//!    path, and a crash+recover would silently diverge.
//!
//! Sanctioned exceptions (the `log`-then-`apply` wrapper, the in-memory
//! fast path, diagnostic-only counters) carry inline allows with reasons —
//! the rule's job is to make each such site a visible, documented decision.
//!
//! Known limitations, accepted: calls through a non-`self` receiver
//! (`db.apply(…)` inside an associated function) and writes through
//! parenthesised places (`(self.f).x = …`) are not tracked; neither occurs
//! in `lobster::db`, and the conventional forms are what code review
//! produces.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Delim, Span, TokKind};
use crate::rules::RuleHit;
use crate::tree::Tree;
use crate::Rule;

/// The root of the replay subtree.
const APPLY: &str = "apply";

/// Methods that only read their receiver. A chain ending in one of these
/// is a read; a chain ending in any *other* method call (`insert`, `push`,
/// `get_mut`, a helper like `self.accounting.record(…)`) is conservatively
/// a write — unknown methods must not silently launder mutations.
const READ_METHODS: [&str; 40] = [
    "all",
    "and_then",
    "any",
    "as_deref",
    "as_ref",
    "as_slice",
    "binary_search",
    "clone",
    "cloned",
    "contains",
    "contains_key",
    "copied",
    "count",
    "expect",
    "filter",
    "first",
    "get",
    "is_empty",
    "is_none",
    "is_some",
    "is_some_and",
    "iter",
    "keys",
    "last",
    "len",
    "map",
    "map_or",
    "max",
    "min",
    "ok",
    "position",
    "range",
    "rev",
    "starts_with",
    "to_owned",
    "to_vec",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "values",
];

/// What one method's body does, as far as this rule can see.
#[derive(Default, Debug)]
struct MethodFacts {
    /// Takes `&mut self` (or owned `self`/`mut self`).
    mut_self: bool,
    /// `self.m(…)` calls, with the span of each call site.
    self_calls: Vec<(String, Span)>,
    /// Fields written (directly or via a mutating chain), with spans.
    field_writes: Vec<(String, Span)>,
}

/// Collect `impl LobsterDb { … }` bodies anywhere in the forest.
fn impl_bodies<'a>(trees: &'a [Tree], out: &mut Vec<&'a [Tree]>) {
    let mut i = 0;
    while i < trees.len() {
        if trees[i].is_ident("impl") {
            // Header = tokens up to the first top-level brace group.
            let body_pos = trees[i + 1..]
                .iter()
                .position(|t| t.group(Delim::Brace).is_some())
                .map(|p| i + 1 + p);
            if let Some(body_pos) = body_pos {
                let header = &trees[i + 1..body_pos];
                if header.iter().any(|t| t.is_ident("LobsterDb")) {
                    if let Some(body) = trees[body_pos].group(Delim::Brace) {
                        out.push(body);
                    }
                }
                i = body_pos + 1;
                continue;
            }
        }
        if let Tree::Group { children, .. } = &trees[i] {
            impl_bodies(children, out);
        }
        i += 1;
    }
}

/// Does this parameter list start with a mutable receiver?
/// `&mut self` / `mut self` / owned `self` → true; `&self` / `&'a self`
/// / no receiver → false.
fn has_mut_receiver(params: &[Tree]) -> bool {
    let mut i = 0;
    let by_ref = params.first().is_some_and(|t| t.is_op("&"));
    if by_ref {
        i += 1;
        if params
            .get(i)
            .and_then(|t| t.leaf())
            .is_some_and(|tok| tok.kind == TokKind::Lifetime)
        {
            i += 1;
        }
    }
    let is_mut = params.get(i).is_some_and(|t| t.is_ident("mut"));
    if is_mut {
        i += 1;
    }
    let is_self = params.get(i).is_some_and(|t| t.is_ident("self"));
    is_self && (is_mut || !by_ref)
}

/// Walk a method body, recording `self.m(…)` calls and `self.field…`
/// writes into `facts`.
fn scan_body(list: &[Tree], facts: &mut MethodFacts) {
    for (i, t) in list.iter().enumerate() {
        if let Tree::Group { children, .. } = t {
            scan_body(children, facts);
        }
        if !t.is_ident("self") {
            continue;
        }
        // Only `self` heads a chain; `x.self` is not Rust.
        if !list.get(i + 1).is_some_and(|n| n.is_op(".")) {
            continue;
        }
        let Some(name) = list.get(i + 2).and_then(|n| n.ident()) else {
            continue;
        };
        let name_span = list.get(i + 2).map_or_else(|| t.span(), |n| n.span());
        if list
            .get(i + 3)
            .is_some_and(|n| n.group(Delim::Paren).is_some())
        {
            // `self.name(…)` — a method call on self.
            facts.self_calls.push((name.to_string(), name_span));
            continue;
        }
        // `self.name` — a field place. Is the chain a write?
        // `&mut self.f` counts immediately.
        let amp_mut = i >= 2 && list[i - 2].is_op("&") && list[i - 1].is_ident("mut");
        if amp_mut {
            facts.field_writes.push((name.to_string(), name_span));
            continue;
        }
        if chain_is_write(list, i + 3) {
            facts.field_writes.push((name.to_string(), name_span));
        }
    }
}

/// Walk the projection/method chain starting at `list[j]` (just past
/// `self.field`) and decide whether it ends in a mutation.
fn chain_is_write(list: &[Tree], mut j: usize) -> bool {
    loop {
        let Some(t) = list.get(j) else {
            return false; // chain runs off the list: a bare read
        };
        if let Some(op) = t.op() {
            match op {
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => {
                    return true;
                }
                "." => {
                    let Some(next) = list.get(j + 1) else {
                        return false;
                    };
                    if let Some(m) = next.ident() {
                        let is_call = list
                            .get(j + 2)
                            .is_some_and(|n| n.group(Delim::Paren).is_some());
                        if is_call {
                            // A read method yields a value, not a place —
                            // the chain is a read. Anything else mutates
                            // (or we can't prove it doesn't): a write.
                            return !READ_METHODS.contains(&m);
                        }
                        // Field projection: continue the chain.
                        j += 2;
                        continue;
                    }
                    if next.leaf().is_some_and(|tok| tok.kind == TokKind::Number) {
                        // Tuple index projection.
                        j += 2;
                        continue;
                    }
                    return false;
                }
                _ => return false,
            }
        } else if t.group(Delim::Bracket).is_some() {
            // Indexing keeps the place alive: `self.f[i] = …`.
            j += 1;
        } else {
            return false;
        }
    }
}

/// Parse the methods of all `impl LobsterDb` blocks in the forest.
fn collect_methods(trees: &[Tree]) -> BTreeMap<String, MethodFacts> {
    let mut bodies = Vec::new();
    impl_bodies(trees, &mut bodies);
    let mut methods = BTreeMap::new();
    for body in bodies {
        let mut i = 0;
        while i < body.len() {
            if !body[i].is_ident("fn") {
                i += 1;
                continue;
            }
            let Some(name) = body.get(i + 1).and_then(|t| t.ident()) else {
                i += 1;
                continue;
            };
            // Params: the first paren group after the name (generic params
            // use `<…>`, which are plain ops, so the paren group is ours).
            let params_pos = body[i + 2..]
                .iter()
                .position(|t| t.group(Delim::Paren).is_some())
                .map(|p| i + 2 + p);
            let Some(params_pos) = params_pos else {
                i += 1;
                continue;
            };
            let fn_body_pos = body[params_pos..]
                .iter()
                .position(|t| t.group(Delim::Brace).is_some())
                .map(|p| params_pos + p);
            let Some(fn_body_pos) = fn_body_pos else {
                i = params_pos + 1;
                continue;
            };
            let mut facts = MethodFacts {
                mut_self: body[params_pos]
                    .group(Delim::Paren)
                    .is_some_and(has_mut_receiver),
                ..MethodFacts::default()
            };
            if let Some(fn_body) = body[fn_body_pos].group(Delim::Brace) {
                scan_body(fn_body, &mut facts);
            }
            methods.insert(name.to_string(), facts);
            i = fn_body_pos + 1;
        }
    }
    methods
}

/// Run the `journal-coverage` rule over one file's forest. Dormant (no
/// hits) when the file declares no `impl LobsterDb`.
pub fn scan_journal_coverage(trees: &[Tree]) -> Vec<RuleHit> {
    let methods = collect_methods(trees);
    if !methods.contains_key(APPLY) {
        return Vec::new();
    }

    // Replay subtree: `apply` plus transitive `self.m(…)` callees.
    let mut subtree: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![APPLY];
    while let Some(m) = stack.pop() {
        if !subtree.insert(m) {
            continue;
        }
        if let Some(facts) = methods.get(m) {
            for (callee, _) in &facts.self_calls {
                if methods.contains_key(callee) && !subtree.contains(callee.as_str()) {
                    stack.push(callee);
                }
            }
        }
    }

    // Journaled fields: everything the subtree writes.
    let journaled: BTreeSet<&str> = subtree
        .iter()
        .filter_map(|m| methods.get(*m))
        .flat_map(|f| f.field_writes.iter().map(|(name, _)| name.as_str()))
        .collect();

    // Writers: subtree methods from which a field write is reachable.
    // Pure readers that happen to live in the subtree (`wf_index`-style
    // lookups) are safe to call from anywhere.
    let mut writers: BTreeSet<&str> = subtree
        .iter()
        .copied()
        .filter(|m| methods.get(*m).is_some_and(|f| !f.field_writes.is_empty()))
        .collect();
    loop {
        let before = writers.len();
        for m in &subtree {
            if writers.contains(m) {
                continue;
            }
            let calls_writer = methods.get(*m).is_some_and(|f| {
                f.self_calls
                    .iter()
                    .any(|(callee, _)| writers.contains(callee.as_str()))
            });
            if calls_writer {
                writers.insert(m);
            }
        }
        if writers.len() == before {
            break;
        }
    }

    let mut hits = Vec::new();
    for (name, facts) in &methods {
        if subtree.contains(name.as_str()) || !facts.mut_self {
            continue;
        }
        for (field, span) in &facts.field_writes {
            if journaled.contains(field.as_str()) {
                hits.push(RuleHit {
                    rule: Rule::JournalCoverage,
                    span: *span,
                });
            }
        }
        for (callee, span) in &facts.self_calls {
            if writers.contains(callee.as_str()) {
                hits.push(RuleHit {
                    rule: Rule::JournalCoverage,
                    span: *span,
                });
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn hits(src: &str) -> Vec<RuleHit> {
        scan_journal_coverage(&build(&lex(src)).expect("balanced"))
    }

    const BASE: &str = "
        impl LobsterDb {
            fn apply(&mut self, rec: Record) {
                match rec {
                    Record::Add(t) => { self.tasks.insert(t.id, t); self.n_tasks += 1; }
                    Record::Done(id) => self.finish(id),
                }
            }
            fn finish(&mut self, id: TaskId) {
                self.done_order.push(id);
            }
        }";

    #[test]
    fn dormant_without_apply() {
        assert!(hits("impl Other { fn f(&mut self) { self.x += 1; } }").is_empty());
    }

    #[test]
    fn subtree_methods_are_clean() {
        assert!(hits(BASE).is_empty());
    }

    #[test]
    fn direct_write_outside_apply_is_flagged() {
        let src = format!(
            "{BASE}
             impl LobsterDb {{
                 fn sneaky(&mut self, id: TaskId) {{ self.done_order.push(id); }}
             }}"
        );
        let h = hits(&src);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].rule, Rule::JournalCoverage);
    }

    #[test]
    fn call_into_subtree_is_flagged() {
        let src = format!(
            "{BASE}
             impl LobsterDb {{
                 fn shortcut(&mut self, rec: Record) {{ self.apply(rec); }}
             }}"
        );
        assert_eq!(hits(&src).len(), 1);
    }

    #[test]
    fn unjournaled_fields_and_reads_are_fine() {
        let src = format!(
            "{BASE}
             impl LobsterDb {{
                 fn log(&mut self, rec: &Record) {{ self.journal.push(rec.clone()); }}
                 fn report(&self) -> usize {{ self.done_order.len() }}
                 fn peek(&mut self) -> Option<&Task> {{ self.tasks.get(&TaskId(0)) }}
             }}"
        );
        assert!(hits(&src).is_empty());
    }

    #[test]
    fn nested_struct_mutation_counts_as_write() {
        let src = format!(
            "{BASE}
             impl LobsterDb {{
                 fn bump(&mut self) {{ self.n_tasks += 1; }}
             }}"
        );
        assert_eq!(hits(&src).len(), 1);
    }
}
