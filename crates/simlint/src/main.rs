//! simlint CLI.
//!
//! ```text
//! cargo run -p simlint                         # report, exit 0
//! cargo run -p simlint -- --check              # exit 1 on non-baselined findings
//! cargo run -p simlint -- --format json        # machine-readable report
//! cargo run -p simlint -- --explain <rule>     # why a rule exists
//! cargo run -p simlint -- --write-baseline     # regenerate simlint.baseline
//! ```
//!
//! Exit codes, so CI failures are diagnosable from the status alone:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | clean (or findings without `--check`) |
//! | 1 | `--check` found non-baselined findings |
//! | 2 | command-line usage error |
//! | 3 | I/O or parse error (unreadable file, unbalanced source, bad baseline) |

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{
    apply_baseline, lint_workspace, parse_baseline, render_baseline, render_human, render_json,
    ErrorKind, LintError, Rule,
};

const BASELINE_FILE: &str = "simlint.baseline";

fn usage() -> &'static str {
    "usage: simlint [--check] [--format human|json] [--explain <rule>]\n\
     \x20              [--write-baseline] [--root <dir>]\n\
     \n\
     --check           exit 1 when non-baselined violations exist (CI gate)\n\
     --format <fmt>    output format: human (default) or json\n\
     --json            alias for --format json\n\
     --explain <rule>  print the rationale for one rule and exit\n\
     --write-baseline  rewrite simlint.baseline from the current tree\n\
     --root <dir>      workspace root (default: this crate's ../..)\n\
     \n\
     exit codes: 0 clean · 1 new findings (--check) · 2 usage · 3 I/O or parse"
}

fn explain(rule_name: &str) -> Result<(), LintError> {
    let Some(rule) = Rule::from_name(rule_name) else {
        let known: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        return Err(LintError::usage(format!(
            "unknown rule `{rule_name}`; known rules: {}",
            known.join(", ")
        )));
    };
    println!("{}\n", rule.name());
    println!("  flags: {}\n", rule.message());
    // Reflow the rationale to a readable width.
    let mut line = String::from(" ");
    for word in rule.explain().split_whitespace() {
        if line.len() + word.len() + 1 > 78 {
            println!("{line}");
            line = String::from(" ");
        }
        line.push(' ');
        line.push_str(word);
    }
    println!("{line}");
    Ok(())
}

fn run() -> Result<bool, LintError> {
    let mut check = false;
    let mut json = false;
    let mut write_baseline = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                Some(other) => {
                    return Err(LintError::usage(format!(
                        "unknown format `{other}` (expected human or json)"
                    )))
                }
                None => {
                    return Err(LintError::usage("--format requires an argument"));
                }
            },
            "--explain" => {
                let Some(rule) = args.next() else {
                    return Err(LintError::usage("--explain requires a rule name"));
                };
                explain(&rule)?;
                return Ok(true);
            }
            "--write-baseline" => write_baseline = true,
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or_else(|| {
                    LintError::usage("--root requires a directory argument")
                })?));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(true);
            }
            other => {
                return Err(LintError::usage(format!(
                    "unknown argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }

    // The linter is path-scoped, so anchor at the workspace root regardless
    // of the invoking directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let root = root.canonicalize().unwrap_or(root);

    let mut findings = lint_workspace(&root)?;

    let baseline_path = root.join(BASELINE_FILE);
    if write_baseline {
        std::fs::write(&baseline_path, render_baseline(&findings))?;
        println!(
            "simlint: wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    if baseline_path.exists() {
        let baseline = parse_baseline(&std::fs::read_to_string(&baseline_path)?)?;
        apply_baseline(&mut findings, &baseline);
    }

    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings));
    }

    let fresh = findings.iter().filter(|f| !f.baselined).count();
    Ok(!check || fresh == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            match e.kind {
                ErrorKind::Usage => ExitCode::from(2),
                ErrorKind::Data => ExitCode::from(3),
            }
        }
    }
}
