//! simlint CLI.
//!
//! ```text
//! cargo run -p simlint                       # report, exit 0
//! cargo run -p simlint -- --check            # exit 1 on non-baselined findings
//! cargo run -p simlint -- --json             # machine-readable output
//! cargo run -p simlint -- --write-baseline   # regenerate simlint.baseline
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{
    apply_baseline, lint_workspace, parse_baseline, render_baseline, render_human, render_json,
};

const BASELINE_FILE: &str = "simlint.baseline";

fn usage() -> &'static str {
    "usage: simlint [--check] [--json] [--write-baseline] [--root <dir>]\n\
     \n\
     --check           exit 1 when non-baselined violations exist (CI gate)\n\
     --json            emit findings as a JSON array\n\
     --write-baseline  rewrite simlint.baseline from the current tree\n\
     --root <dir>      workspace root (default: this crate's ../..)"
}

fn run() -> Result<bool, simlint::LintError> {
    let mut check = false;
    let mut json = false;
    let mut write_baseline = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or_else(|| {
                    simlint::LintError("--root requires a directory argument".into())
                })?));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(true);
            }
            other => {
                return Err(simlint::LintError(format!(
                    "unknown argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }

    // The linter is path-scoped, so anchor at the workspace root regardless
    // of the invoking directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let root = root.canonicalize().unwrap_or(root);

    let mut findings = lint_workspace(&root)?;

    let baseline_path = root.join(BASELINE_FILE);
    if write_baseline {
        std::fs::write(&baseline_path, render_baseline(&findings))?;
        println!(
            "simlint: wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    if baseline_path.exists() {
        let baseline = parse_baseline(&std::fs::read_to_string(&baseline_path)?)?;
        apply_baseline(&mut findings, &baseline);
    }

    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings));
    }

    let fresh = findings.iter().filter(|f| !f.baselined).count();
    Ok(!check || fresh == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
