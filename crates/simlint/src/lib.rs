//! simlint — workspace determinism & robustness linter.
//!
//! A source-level static analysis pass for the simulation workspace. It is
//! deliberately *lexical* (no full parser is available offline): it strips
//! comments and string/char literals, tracks `#[cfg(test)]` boundaries, and
//! matches identifier-bounded tokens. That makes it fast and dependency-free
//! at the cost of type awareness — which is why every rule has an explicit
//! escape hatch and a baseline file for the pre-existing tail.
//!
//! ## Rules
//!
//! | rule | what it flags | where |
//! |------|---------------|-------|
//! | `no-wall-clock` | `SystemTime::now`, `Instant::now` | sim-crate library code |
//! | `no-ambient-rng` | `thread_rng`, `from_entropy`, `StdRng::seed_from_u64` | everywhere except `simkit::rng` |
//! | `no-unordered-iteration` | `HashMap` / `HashSet` tokens | sim-crate library code |
//! | `no-panic-in-lib` | `.unwrap()`, `.expect(`, `panic!` | all library code |
//! | `wal-expect-confined` | `.expect("journal …")`-style fatal WAL allows | everywhere except `lobster::db` |
//!
//! `no-unordered-iteration` flags the unordered container *types* rather
//! than iteration sites: lexically, the type name is the reliable signal,
//! and a container that is never iterated is exactly the case the allow
//! marker exists to document.
//!
//! ## Escape hatches
//!
//! * `// simlint::allow(<rule>): <reason>` — on the offending line or the
//!   line directly above. The reason is mandatory.
//! * `// simlint::allow-file(<rule>): <reason>` — anywhere in the file;
//!   suppresses the rule for the whole file (e.g. a real-execution harness
//!   that legitimately reads wall-clock time).
//! * the baseline file (`simlint.baseline`) — a generated multiset of
//!   `(rule, file, trimmed-line)` entries for pre-existing violations,
//!   keyed on line *content* so line-number drift does not invalidate it.
//!
//! Scanned scope: `crates/*/src/**/*.rs`, excluding `main.rs`, `src/bin/`,
//! fixtures, and everything at or after a `#[cfg(test)]` marker (by
//! convention test modules sit at the end of a file in this workspace).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The five lint rules.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time sources in simulation library code.
    WallClock,
    /// Ambient (OS- or thread-seeded) randomness outside `simkit::rng`.
    AmbientRng,
    /// Unordered containers in simulation state.
    UnorderedIteration,
    /// Panic paths in library code.
    PanicInLib,
    /// Fatal WAL-append `expect`s outside the journal layer.
    WalExpectConfined,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::UnorderedIteration,
        Rule::PanicInLib,
        Rule::WalExpectConfined,
    ];

    /// The kebab-case name used in allow markers and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "no-wall-clock",
            Rule::AmbientRng => "no-ambient-rng",
            Rule::UnorderedIteration => "no-unordered-iteration",
            Rule::PanicInLib => "no-panic-in-lib",
            Rule::WalExpectConfined => "wal-expect-confined",
        }
    }

    /// Parse a rule name (as written in allow markers / the baseline).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Human explanation attached to findings.
    pub fn message(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock time in simulation library code; use simkit::time::SimTime"
            }
            Rule::AmbientRng => {
                "ambient RNG outside simkit::rng; derive streams with SimRng::split"
            }
            Rule::UnorderedIteration => {
                "unordered container in simulation state; iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet, or allow if never iterated"
            }
            Rule::PanicInLib => {
                "panic path in library code; return Result, or document the invariant \
                 with expect + an allow"
            }
            Rule::WalExpectConfined => {
                "fatal WAL expect outside lobster::db; crash-on-append-failure is the \
                 journal layer's contract — other layers must return Result"
            }
        }
    }

    /// The identifier-bounded tokens this rule matches.
    fn patterns(self) -> &'static [&'static str] {
        match self {
            Rule::WallClock => &["SystemTime::now", "Instant::now"],
            Rule::AmbientRng => &["thread_rng", "from_entropy", "StdRng::seed_from_u64"],
            Rule::UnorderedIteration => &["HashMap", "HashSet"],
            Rule::PanicInLib => &[".unwrap()", ".expect(", "panic!"],
            // Matched by `wal_expect_hit` (the phrase lives inside a string
            // literal, which `strip_noise` blanks).
            Rule::WalExpectConfined => &[],
        }
    }
}

/// The fatal-WAL-allow idiom this workspace confines to `lobster::db`:
/// an `.expect` whose message names the journal machinery.
const WAL_EXPECT_PHRASES: [&str; 3] = [
    ".expect(\"journal",
    ".expect(\"snapshot",
    ".expect(\"compaction",
];

/// Does this line carry a WAL-style fatal expect? The phrase sits inside a
/// string literal (blanked by `strip_noise`), so it is checked on the raw
/// line — gated on the stripped line holding a real `.expect(` call site,
/// which keeps comments from tripping the rule.
fn wal_expect_hit(stripped: &str, raw: &str) -> bool {
    has_token(stripped, ".expect(") && WAL_EXPECT_PHRASES.iter().any(|p| raw.contains(p))
}

/// Crates whose library code is simulation state / simulation logic.
const SIM_CRATES: [&str; 7] = [
    "simkit",
    "simnet",
    "batchsim",
    "wqueue",
    "cvmfssim",
    "gridstore",
    "lobster",
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed source line (the baseline key).
    pub content: String,
    /// Whether the baseline covers this finding.
    pub baselined: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.rule.message()
        )
    }
}

/// Linter failure (I/O or malformed input).
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simlint: {}", self.0)
    }
}

impl std::error::Error for LintError {}

impl From<io::Error> for LintError {
    fn from(e: io::Error) -> Self {
        LintError(e.to_string())
    }
}

// ---- source preprocessing --------------------------------------------------

/// Strip comments and string/char literal *contents* from a source file,
/// preserving line structure so line numbers survive. Handles nested block
/// comments, escapes, and distinguishes lifetimes from char literals.
fn strip_noise(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut block_depth = 0usize;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut line = String::with_capacity(raw.len());
        let mut i = 0;
        while i < chars.len() {
            if block_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    block_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => break, // line comment
                '/' if chars.get(i + 1) == Some(&'*') => {
                    block_depth += 1;
                    i += 2;
                }
                '"' => {
                    // Skip string literal contents.
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    line.push_str("\"\"");
                }
                '\'' => {
                    // Char literal or lifetime? A char literal closes within
                    // a few chars; a lifetime has no closing quote.
                    let close = if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char: find the terminating quote.
                        (i + 2..chars.len().min(i + 8)).find(|&j| chars[j] == '\'')
                    } else if chars.get(i + 2) == Some(&'\'') {
                        Some(i + 2)
                    } else {
                        None
                    };
                    match close {
                        Some(j) => {
                            line.push_str("' '");
                            i = j + 1;
                        }
                        None => {
                            line.push('\'');
                            i += 1;
                        }
                    }
                }
                c => {
                    line.push(c);
                    i += 1;
                }
            }
        }
        out.push(line);
    }
    out
}

/// Whether `c` can be part of an identifier.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `line` contain `pattern` as an identifier-bounded token? A pattern
/// edge that is itself punctuation (`.`, `(`, `!`, …) is its own boundary.
fn has_token(line: &str, pattern: &str) -> bool {
    let first_is_ident = pattern.chars().next().is_some_and(is_ident_char);
    let last_is_ident = pattern.chars().next_back().is_some_and(is_ident_char);
    let mut start = 0;
    while let Some(pos) = line[start..].find(pattern) {
        let at = start + pos;
        let before_ok = !first_is_ident
            || at == 0
            || !is_ident_char(line[..at].chars().next_back().unwrap_or(' '));
        let end = at + pattern.len();
        let after_ok =
            !last_is_ident || end >= line.len() || !line[end..].starts_with(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = at + pattern.len();
    }
    false
}

// ---- allow markers ---------------------------------------------------------

/// Allow markers present on one line.
#[derive(Default, Clone)]
struct LineAllows {
    line_rules: Vec<Rule>,
    file_rules: Vec<Rule>,
}

/// Parse `simlint::allow(<rule>): <reason>` / `simlint::allow-file(...)`
/// markers from a raw (unstripped) source line. Malformed markers — an
/// unknown rule name or a missing reason — suppress nothing.
fn parse_allows(raw: &str) -> LineAllows {
    let mut allows = LineAllows::default();
    let mut rest = raw;
    while let Some(pos) = rest.find("simlint::allow") {
        rest = &rest[pos + "simlint::allow".len()..];
        let file_scope = rest.starts_with("-file");
        let after = if file_scope {
            &rest["-file".len()..]
        } else {
            rest
        };
        let Some(open) = after.strip_prefix('(') else {
            continue;
        };
        let Some(close) = open.find(')') else {
            continue;
        };
        let rule_name = open[..close].trim();
        let tail = &open[close + 1..];
        let has_reason = tail
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !has_reason {
            continue;
        }
        if let Some(rule) = Rule::from_name(rule_name) {
            if file_scope {
                allows.file_rules.push(rule);
            } else {
                allows.line_rules.push(rule);
            }
        }
        rest = tail;
    }
    allows
}

// ---- per-file linting ------------------------------------------------------

/// Which rules apply to a library file at `rel_path` (repo-relative).
fn applicable_rules(rel_path: &str) -> Vec<Rule> {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let is_sim_crate = SIM_CRATES.contains(&crate_name);
    let mut rules = Vec::new();
    if is_sim_crate {
        rules.push(Rule::WallClock);
    }
    if rel_path != "crates/simkit/src/rng.rs" {
        rules.push(Rule::AmbientRng);
    }
    if is_sim_crate {
        rules.push(Rule::UnorderedIteration);
    }
    rules.push(Rule::PanicInLib);
    if rel_path != "crates/lobster/src/db.rs" {
        rules.push(Rule::WalExpectConfined);
    }
    rules
}

/// Lint one file's source. `rel_path` determines rule scoping; findings
/// suppressed by allow markers are omitted. Everything at or after a
/// `#[cfg(test)]` line is treated as test code (workspace convention puts
/// test modules at the end of the file).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let rules = applicable_rules(rel_path);
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped = strip_noise(source);
    let allows: Vec<LineAllows> = raw_lines.iter().map(|l| parse_allows(l)).collect();
    let file_allowed: Vec<Rule> = allows
        .iter()
        .flat_map(|a| a.file_rules.iter().copied())
        .collect();

    let mut findings = Vec::new();
    let mut in_test = false;
    for (idx, line) in stripped.iter().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)") {
            in_test = true;
        }
        if in_test {
            continue;
        }
        for &rule in &rules {
            if file_allowed.contains(&rule) {
                continue;
            }
            let line_allowed = allows[idx].line_rules.contains(&rule)
                || idx > 0 && allows[idx - 1].line_rules.contains(&rule);
            if line_allowed {
                continue;
            }
            let hit = match rule {
                Rule::WalExpectConfined => {
                    wal_expect_hit(line, raw_lines.get(idx).copied().unwrap_or(""))
                }
                _ => rule.patterns().iter().any(|p| has_token(line, p)),
            };
            if hit {
                findings.push(Finding {
                    rule,
                    file: rel_path.to_string(),
                    line: idx + 1,
                    content: raw_lines
                        .get(idx)
                        .map(|l| l.trim())
                        .unwrap_or("")
                        .to_string(),
                    baselined: false,
                });
            }
        }
    }
    findings
}

// ---- workspace walking -----------------------------------------------------

/// Is this repo-relative path library code in scope for linting?
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.ends_with(".rs")
        && rel.contains("/src/")
        && !rel.contains("/bin/")
        && !rel.contains("/fixtures/")
        && !rel.ends_with("/main.rs")
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// All in-scope library files under `<root>/crates`, sorted.
pub fn collect_files(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    let mut all = Vec::new();
    walk(&crates_dir, &mut all)?;
    let mut files: Vec<(String, PathBuf)> = all
        .into_iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(root)
                .ok()?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            in_scope(&rel).then_some((rel, path))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Lint the whole workspace under `root`. Findings are sorted by
/// `(file, line, rule)` and not yet baseline-marked.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintError> {
    let mut findings = Vec::new();
    for (rel, path) in collect_files(root)? {
        let source =
            fs::read_to_string(&path).map_err(|e| LintError(format!("reading {rel}: {e}")))?;
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

// ---- baseline --------------------------------------------------------------

/// Baseline multiset: `(rule, file, trimmed-line-content)` → count.
pub type Baseline = BTreeMap<(String, String, String), usize>;

/// Parse a baseline file (tab-separated: rule, file, content). Blank lines
/// and `#` comments are skipped.
pub fn parse_baseline(text: &str) -> Result<Baseline, LintError> {
    let mut baseline = Baseline::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (rule, file, content) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(f), Some(c)) => (r, f, c),
            _ => {
                return Err(LintError(format!(
                    "baseline line {} is not rule<TAB>file<TAB>content",
                    idx + 1
                )))
            }
        };
        if Rule::from_name(rule).is_none() {
            return Err(LintError(format!(
                "baseline line {}: unknown rule `{rule}`",
                idx + 1
            )));
        }
        *baseline
            .entry((rule.to_string(), file.to_string(), content.to_string()))
            .or_insert(0) += 1;
    }
    Ok(baseline)
}

/// Render findings as a baseline file (sorted, one entry per occurrence).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings
        .iter()
        .map(|f| format!("{}\t{}\t{}", f.rule.name(), f.file, f.content))
        .collect();
    lines.sort();
    let mut out = String::from(
        "# simlint baseline — pre-existing violations, keyed on (rule, file, line content).\n\
         # Regenerate with: cargo run -p simlint -- --write-baseline\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Mark findings covered by the baseline (consuming multiset counts in
/// file order).
pub fn apply_baseline(findings: &mut [Finding], baseline: &Baseline) {
    let mut remaining = baseline.clone();
    for f in findings.iter_mut() {
        let key = (f.rule.name().to_string(), f.file.clone(), f.content.clone());
        if let Some(n) = remaining.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                f.baselined = true;
            }
        }
    }
}

// ---- output ----------------------------------------------------------------

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array.
pub fn render_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"content\":\"{}\",\
                 \"message\":\"{}\",\"baselined\":{}}}",
                f.rule.name(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.content),
                json_escape(f.rule.message()),
                f.baselined
            )
        })
        .collect();
    format!("[{}]\n", items.join(",\n "))
}

/// Render the human report: one `file:line: rule: message` per
/// non-baselined finding, then a per-rule summary.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings.iter().filter(|f| !f.baselined) {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let mut fresh = BTreeMap::new();
    let mut base = BTreeMap::new();
    for f in findings {
        *if f.baselined { &mut base } else { &mut fresh }
            .entry(f.rule.name())
            .or_insert(0) += 1;
    }
    out.push_str("simlint summary:\n");
    for rule in Rule::ALL {
        out.push_str(&format!(
            "  {:<24} {:>4} new {:>4} baselined\n",
            rule.name(),
            fresh.get(rule.name()).copied().unwrap_or(0),
            base.get(rule.name()).copied().unwrap_or(0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(rel: &str, src: &str) -> Vec<Rule> {
        let mut rules: Vec<Rule> = lint_source(rel, src).into_iter().map(|f| f.rule).collect();
        rules.dedup();
        rules
    }

    // ---- fixtures: each trips exactly its own rule ----

    #[test]
    fn fixture_wall_clock() {
        let src = include_str!("../fixtures/wall_clock.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn fixture_ambient_rng() {
        let src = include_str!("../fixtures/ambient_rng.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::AmbientRng]
        );
    }

    #[test]
    fn fixture_unordered_iteration() {
        let src = include_str!("../fixtures/unordered_iteration.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::UnorderedIteration]
        );
    }

    #[test]
    fn fixture_panic_in_lib() {
        let src = include_str!("../fixtures/panic_in_lib.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::PanicInLib]
        );
    }

    #[test]
    fn fixture_wal_expect() {
        let src = include_str!("../fixtures/wal_expect.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::WalExpectConfined]
        );
    }

    #[test]
    fn fixture_allowed_is_clean() {
        let src = include_str!("../fixtures/allowed.rs");
        assert_eq!(lint_source("crates/simkit/src/fixture.rs", src), vec![]);
    }

    // ---- scoping ----

    #[test]
    fn wall_clock_only_in_sim_crates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit("crates/simlint/src/x.rs", src), vec![]);
        assert_eq!(
            rules_hit("crates/wqueue/src/x.rs", src),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn rng_module_is_exempt_from_rng_rule() {
        let src = "fn f() { let r = thread_rng(); }\n";
        assert_eq!(rules_hit("crates/simkit/src/rng.rs", src), vec![]);
        assert_eq!(
            rules_hit("crates/simkit/src/engine.rs", src),
            vec![Rule::AmbientRng]
        );
    }

    #[test]
    fn wal_expects_confined_to_db() {
        let src = include_str!("../fixtures/wal_expect.rs");
        // The journal layer itself owns the idiom…
        assert_eq!(rules_hit("crates/lobster/src/db.rs", src), vec![]);
        // …every other library file trips the rule.
        assert_eq!(
            rules_hit("crates/lobster/src/driver.rs", src),
            vec![Rule::WalExpectConfined]
        );
        // A comment mentioning the idiom next to an unrelated expect does
        // not trip it.
        let src = "// .expect(\"journal write\") is db-only\n\
                   // simlint::allow(no-panic-in-lib): fixture\n\
                   let x = y.expect(\"present\");\n";
        assert_eq!(rules_hit("crates/lobster/src/driver.rs", src), vec![]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn scope_filter() {
        assert!(in_scope("crates/simkit/src/engine.rs"));
        assert!(!in_scope("crates/simkit/src/main.rs"));
        assert!(!in_scope("crates/bench/src/bin/fig9.rs"));
        assert!(!in_scope("crates/simlint/fixtures/wall_clock.rs"));
        assert!(!in_scope("crates/simkit/tests/proptests.rs"));
        assert!(!in_scope("vendor/serde/src/lib.rs"));
    }

    // ---- lexical details ----

    #[test]
    fn tokens_are_identifier_bounded() {
        assert!(has_token("let x = Instant::now();", "Instant::now"));
        assert!(has_token("std::time::Instant::now()", "Instant::now"));
        assert!(!has_token("MyInstant::nowhere()", "Instant::now"));
        assert!(!has_token("fn unwrap_all()", ".unwrap()"));
        assert!(has_token("x.unwrap()", ".unwrap()"));
        assert!(!has_token("HashMapLike", "HashMap"));
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "// HashMap in a comment\nfn f() { let s = \"Instant::now\"; }\n\
                   /* panic! in\n a block comment */\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* panic! */ still comment .unwrap() */ fn f() {}\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\"' }\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    // ---- allow markers ----

    #[test]
    fn allow_requires_reason() {
        let src = "x.unwrap(); // simlint::allow(no-panic-in-lib)\n";
        assert_eq!(
            rules_hit("crates/simkit/src/x.rs", src),
            vec![Rule::PanicInLib]
        );
        let src = "x.unwrap(); // simlint::allow(no-panic-in-lib): init-only\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_on_line_above() {
        let src = "// simlint::allow(no-panic-in-lib): invariant documented\nx.unwrap();\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_wrong_rule_does_not_suppress() {
        let src = "x.unwrap(); // simlint::allow(no-wall-clock): wrong rule\n";
        assert_eq!(
            rules_hit("crates/simkit/src/x.rs", src),
            vec![Rule::PanicInLib]
        );
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// simlint::allow-file(no-wall-clock): real-time harness\n\
                   fn a() -> Instant { Instant::now() }\n\
                   fn b() -> Instant { Instant::now() }\n";
        assert_eq!(rules_hit("crates/wqueue/src/x.rs", src), vec![]);
    }

    // ---- baseline ----

    #[test]
    fn baseline_roundtrip_and_multiset() {
        let src = "fn f() { a.unwrap(); }\nfn g() { a.unwrap(); }\nfn h() { b.unwrap(); }\n";
        let mut findings = lint_source("crates/simkit/src/x.rs", src);
        assert_eq!(findings.len(), 3);
        // Baseline only one of the two identical `a.unwrap()` lines.
        let baseline =
            parse_baseline("no-panic-in-lib\tcrates/simkit/src/x.rs\tfn f() { a.unwrap(); }\n")
                .unwrap();
        apply_baseline(&mut findings, &baseline);
        assert_eq!(findings.iter().filter(|f| f.baselined).count(), 1);

        // Full render/parse round-trip covers everything.
        let rendered = render_baseline(&findings);
        let full = parse_baseline(&rendered).unwrap();
        let mut findings2 = lint_source("crates/simkit/src/x.rs", src);
        apply_baseline(&mut findings2, &full);
        assert!(findings2.iter().all(|f| f.baselined));
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(parse_baseline("not a baseline line").is_err());
        assert!(parse_baseline("no-such-rule\tf.rs\tcontent").is_err());
        assert!(parse_baseline("# comment\n\n").unwrap().is_empty());
    }

    // ---- output ----

    #[test]
    fn json_output_is_wellformed() {
        let findings = lint_source(
            "crates/simkit/src/x.rs",
            "fn f(m: &HashMap<u64, u64>) { let tag = \"k\"; }\n",
        );
        let json = render_json(&findings);
        assert!(json.starts_with('['));
        assert!(json.contains("\"rule\":\"no-unordered-iteration\""));
        assert!(json.contains("\"line\":1"));
        // The content contains quotes that must be escaped.
        assert!(json.contains("\\\""));
    }

    #[test]
    fn human_output_has_location_and_summary() {
        let findings = lint_source(
            "crates/simkit/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        let human = render_human(&findings);
        assert!(human.contains("crates/simkit/src/x.rs:1: no-wall-clock:"));
        assert!(human.contains("simlint summary:"));
    }
}
