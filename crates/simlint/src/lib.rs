//! simlint — workspace determinism & robustness linter.
//!
//! A source-level static analysis pass for the simulation workspace,
//! built on a small hand-rolled Rust lexer ([`lexer`]) and token-tree
//! parser ([`tree`]) — no external dependencies, the workspace is
//! offline/vendored. Analysis is span-aware and nesting-aware: string and
//! comment contents can never trip a rule, every finding carries
//! line *and* column, and structural rules (call graphs, match arms, loop
//! bodies) see real nesting instead of raw lines.
//!
//! ## Rules
//!
//! | rule | what it flags | where |
//! |------|---------------|-------|
//! | `no-wall-clock` | `SystemTime::now`, `Instant::now` | sim-crate library code |
//! | `no-ambient-rng` | `thread_rng`, `from_entropy`, `StdRng::seed_from_u64` | everywhere except `simkit::rng` |
//! | `no-unordered-iteration` | `HashMap` / `HashSet` tokens | sim-crate library code |
//! | `no-panic-in-lib` | `.unwrap()`, `.expect(`, `panic!` | all library code |
//! | `wal-expect-confined` | `.expect("journal …")`-style fatal WAL allows | everywhere except `lobster::db` |
//! | `journal-coverage` | `LobsterDb` state mutation outside the `apply` replay path | `lobster::db` |
//! | `no-float-order` | order-sensitive float accumulation from unordered sources | sim-crate library code |
//! | `no-shared-mut-in-sim` | `Rc`, `RefCell`, `Cell`, `static mut`, `thread_local!` | sim-crate library code |
//! | `no-wildcard-event-match` | `_ =>` arms in `match`es over the `Ev` enum | sim-crate library code |
//!
//! `no-unordered-iteration` flags the unordered container *types* rather
//! than iteration sites: the type name is the reliable signal, and a
//! container that is never iterated is exactly the case the allow marker
//! exists to document.
//!
//! ## Escape hatches
//!
//! * `// simlint::allow(<rule>): <reason>` — in a comment on the offending
//!   line or the line directly above. The reason is mandatory.
//! * `// simlint::allow-file(<rule>): <reason>` — anywhere in the file;
//!   suppresses the rule for the whole file (e.g. a real-execution harness
//!   that legitimately reads wall-clock time).
//! * the baseline file (`simlint.baseline`) — a generated set of
//!   `(rule, file, content-hash, occurrence-index)` entries for
//!   pre-existing violations. Content hashing keeps the baseline stable
//!   under line drift; the occurrence index keeps identical lines from
//!   aliasing to one key.
//!
//! Scanned scope: `crates/*/src/**/*.rs`, excluding `main.rs`, `src/bin/`,
//! fixtures, and everything at or after a `#[cfg(test)]` marker (by
//! convention test modules sit at the end of a file in this workspace).

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

mod journal;
pub mod lexer;
mod rules;
pub mod tree;

use lexer::{Delim, TokKind, Token};

/// The nine lint rules.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time sources in simulation library code.
    WallClock,
    /// Ambient (OS- or thread-seeded) randomness outside `simkit::rng`.
    AmbientRng,
    /// Unordered containers in simulation state.
    UnorderedIteration,
    /// Panic paths in library code.
    PanicInLib,
    /// Fatal WAL-append `expect`s outside the journal layer.
    WalExpectConfined,
    /// `LobsterDb` journaled-state mutation bypassing `apply`.
    JournalCoverage,
    /// Order-sensitive float accumulation from unordered sources.
    FloatOrder,
    /// Shared-mutability primitives in simulation model code.
    SharedMutInSim,
    /// Catch-all arms in `match`es over the event enum.
    WildcardEventMatch,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 9] = [
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::UnorderedIteration,
        Rule::PanicInLib,
        Rule::WalExpectConfined,
        Rule::JournalCoverage,
        Rule::FloatOrder,
        Rule::SharedMutInSim,
        Rule::WildcardEventMatch,
    ];

    /// The kebab-case name used in allow markers and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "no-wall-clock",
            Rule::AmbientRng => "no-ambient-rng",
            Rule::UnorderedIteration => "no-unordered-iteration",
            Rule::PanicInLib => "no-panic-in-lib",
            Rule::WalExpectConfined => "wal-expect-confined",
            Rule::JournalCoverage => "journal-coverage",
            Rule::FloatOrder => "no-float-order",
            Rule::SharedMutInSim => "no-shared-mut-in-sim",
            Rule::WildcardEventMatch => "no-wildcard-event-match",
        }
    }

    /// Parse a rule name (as written in allow markers / the baseline).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line explanation attached to findings.
    pub fn message(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock time in simulation library code; use simkit::time::SimTime"
            }
            Rule::AmbientRng => {
                "ambient RNG outside simkit::rng; derive streams with SimRng::split"
            }
            Rule::UnorderedIteration => {
                "unordered container in simulation state; iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet, or allow if never iterated"
            }
            Rule::PanicInLib => {
                "panic path in library code; return Result, or document the invariant \
                 with expect + an allow"
            }
            Rule::WalExpectConfined => {
                "fatal WAL expect outside lobster::db; crash-on-append-failure is the \
                 journal layer's contract — other layers must return Result"
            }
            Rule::JournalCoverage => {
                "journaled LobsterDb state mutated outside the apply replay path; \
                 route the mutation through a Record, or allow with the invariant"
            }
            Rule::FloatOrder => {
                "order-sensitive float accumulation from a source without proven \
                 order; iterate an ordered container, or allow naming the source"
            }
            Rule::SharedMutInSim => {
                "shared-mutability primitive in simulation model code; model state \
                 must stay Send-clean for the parallel engine — use plain ownership"
            }
            Rule::WildcardEventMatch => {
                "catch-all arm in a match over the event enum; enumerate every \
                 variant so new event kinds fail closed at compile time"
            }
        }
    }

    /// The long-form rationale shown by `--explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "Simulated components must read time from the engine's clock \
                 (simkit::time::SimTime via Ctx::now()), never from \
                 std::time::{SystemTime, Instant}. A wall-clock read makes a run's \
                 behaviour depend on host speed and scheduling, so the same seed \
                 stops producing the same figure. The real threaded execution \
                 backend (wqueue::local) is the one sanctioned exception and \
                 carries a file-level allow."
            }
            Rule::AmbientRng => {
                "All randomness flows from an explicit u64 seed through \
                 simkit::rng::SimRng; streams are derived with SimRng::split. \
                 thread_rng(), from_entropy(), and StdRng::seed_from_u64 outside \
                 the rng module pull entropy the seed does not control, which \
                 makes runs unreproducible by construction."
            }
            Rule::UnorderedIteration => {
                "HashMap/HashSet iteration order depends on a per-process random \
                 hasher. Any simulation state held in a hash container can leak \
                 that nondeterminism into event ordering, reports, or logs. Sim \
                 state uses BTreeMap/BTreeSet; a hash container that is only ever \
                 membership-tested may stay, with an allow saying so."
            }
            Rule::PanicInLib => {
                "Library crates return Result. A bare .unwrap() hides the failure \
                 mode; .expect(...) with a documented invariant plus an allow \
                 marker (or a baseline entry) is the sanctioned form when the \
                 invariant genuinely cannot fail. panic! in a library is reserved \
                 for unreachable states."
            }
            Rule::WalExpectConfined => {
                "Crash-on-append-failure is the journal layer's contract: if the \
                 WAL cannot be written, lobster::db halts the process rather than \
                 diverge from its own journal. That idiom — .expect(\"journal \
                 ...\") and friends — must not leak into other layers, which are \
                 required to surface I/O errors as Result."
            }
            Rule::JournalCoverage => {
                "LobsterDb's crash-consistency guarantee is that WAL replay \
                 reconstructs the database exactly — 'replay is authoritative'. \
                 That only holds if every mutation of journaled state routes \
                 through the single apply(Record) mutator. This rule rebuilds the \
                 discipline statically: it computes the call-graph subtree rooted \
                 at apply, takes the fields that subtree writes as the journaled \
                 set, and flags any other &mut self method that writes one of \
                 those fields or calls into the subtree. Sanctioned wrappers (the \
                 log-then-apply path, the in-memory fast path, diagnostic-only \
                 counters) carry inline allows naming their invariant."
            }
            Rule::FloatOrder => {
                "Float addition is not associative, so the value of a .sum() or a \
                 += accumulation depends on iteration order. Cross-backend trace \
                 identity (tests/engine_diff.rs) requires every float reduction \
                 to have a proven order. Ranges (0..n) prove themselves; anything \
                 else — Vec, VecDeque, a const table — needs an allow naming the \
                 ordered source, which is the attestation this rule exists to \
                 collect. Reductions over hash containers are never allowable; \
                 restructure them onto ordered state instead."
            }
            Rule::SharedMutInSim => {
                "The parallel discrete-event engine (ROADMAP item 2) shards model \
                 state across threads, so model types must be Send and free of \
                 interior mutability. Rc, RefCell, Cell, static mut, and \
                 thread_local! each either break Send or smuggle hidden write \
                 channels that the engine cannot schedule deterministically. \
                 Keeping the sim crates clean now means the parallel engine \
                 starts from a provably shardable model layer."
            }
            Rule::WildcardEventMatch => {
                "A match over the event enum with a catch-all arm silently drops \
                 every event kind added later — the compiler cannot flag the \
                 omission. Enumerating all variants makes a new Ev variant a \
                 compile error at every dispatch site, which is exactly the \
                 fail-closed behaviour a growing event vocabulary needs."
            }
        }
    }
}

/// Crates whose library code is simulation state / simulation logic.
const SIM_CRATES: [&str; 10] = [
    "simkit",
    "simnet",
    "batchsim",
    "wqueue",
    "cvmfssim",
    "gridstore",
    "lobster",
    "opsplane",
    "scenario",
    "tenancy",
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
    /// The trimmed source line (hashes into the baseline key).
    pub content: String,
    /// Whether the baseline covers this finding.
    pub baselined: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.rule.message()
        )
    }
}

/// What kind of failure a [`LintError`] is — drives the CLI exit code.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad command line (exit 2).
    Usage,
    /// I/O failure or unparseable input — source or baseline (exit 3).
    Data,
}

/// Linter failure.
#[derive(Debug)]
pub struct LintError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub msg: String,
}

impl LintError {
    /// A command-line usage error.
    pub fn usage(msg: impl Into<String>) -> Self {
        LintError {
            kind: ErrorKind::Usage,
            msg: msg.into(),
        }
    }

    /// An I/O or malformed-input error.
    pub fn data(msg: impl Into<String>) -> Self {
        LintError {
            kind: ErrorKind::Data,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simlint: {}", self.msg)
    }
}

impl std::error::Error for LintError {}

impl From<io::Error> for LintError {
    fn from(e: io::Error) -> Self {
        LintError::data(e.to_string())
    }
}

// ---- allow markers ---------------------------------------------------------

/// Allow markers found in one comment token.
#[derive(Default, Clone)]
struct CommentAllows {
    line_rules: Vec<Rule>,
    file_rules: Vec<Rule>,
}

/// Parse `simlint::allow(<rule>): <reason>` / `simlint::allow-file(...)`
/// markers from a comment's text. Malformed markers — an unknown rule name
/// or a missing reason — suppress nothing.
fn parse_allows(comment: &str) -> CommentAllows {
    let mut allows = CommentAllows::default();
    let mut rest = comment;
    while let Some(pos) = rest.find("simlint::allow") {
        rest = &rest[pos + "simlint::allow".len()..];
        let file_scope = rest.starts_with("-file");
        let after = if file_scope {
            &rest["-file".len()..]
        } else {
            rest
        };
        let Some(open) = after.strip_prefix('(') else {
            continue;
        };
        let Some(close) = open.find(')') else {
            continue;
        };
        let rule_name = open[..close].trim();
        let tail = &open[close + 1..];
        let has_reason = tail
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !has_reason {
            continue;
        }
        if let Some(rule) = Rule::from_name(rule_name) {
            if file_scope {
                allows.file_rules.push(rule);
            } else {
                allows.line_rules.push(rule);
            }
        }
        rest = tail;
    }
    allows
}

/// The allow state of one file: file-wide rules plus `(rule, line)` pairs.
/// A marker suppresses its rule on the comment's last line and the line
/// after it — i.e. on the same line as the offence or the line above.
struct Allows {
    file_rules: Vec<Rule>,
    lines: BTreeSet<(Rule, usize)>,
}

fn collect_allows(tokens: &[Token]) -> Allows {
    let mut file_rules = Vec::new();
    let mut lines = BTreeSet::new();
    for tok in tokens {
        if tok.kind != TokKind::Comment {
            continue;
        }
        let parsed = parse_allows(&tok.text);
        file_rules.extend(parsed.file_rules);
        let end_line = tok.span.line as usize + tok.text.matches('\n').count();
        for rule in parsed.line_rules {
            lines.insert((rule, end_line));
            lines.insert((rule, end_line + 1));
        }
    }
    Allows { file_rules, lines }
}

// ---- test-code boundary ----------------------------------------------------

/// The line of the first `#[cfg(test)]` outer attribute, if any. By
/// workspace convention test modules sit at the end of a file; everything
/// at or after the marker is test code. Matched on tokens, so strings and
/// comments can never fake (or hide) the boundary. `#[cfg(not(test))]`
/// and `#[cfg_attr(test, …)]` do not match.
fn test_boundary_line(tokens: &[Token]) -> Option<usize> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    code.windows(5).find_map(|w| {
        let shape = w[0].text == "#"
            && w[1].kind == TokKind::Open(Delim::Bracket)
            && w[2].text == "cfg"
            && w[3].kind == TokKind::Open(Delim::Paren)
            && w[4].text == "test";
        shape.then_some(w[0].span.line as usize)
    })
}

// ---- per-file linting ------------------------------------------------------

/// Which rules apply to a library file at `rel_path` (repo-relative).
fn applicable_rules(rel_path: &str) -> Vec<Rule> {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let is_sim_crate = SIM_CRATES.contains(&crate_name);
    let mut rules = Vec::new();
    if is_sim_crate {
        rules.push(Rule::WallClock);
    }
    if rel_path != "crates/simkit/src/rng.rs" {
        rules.push(Rule::AmbientRng);
    }
    if is_sim_crate {
        rules.push(Rule::UnorderedIteration);
    }
    rules.push(Rule::PanicInLib);
    if !rel_path.starts_with("crates/lobster/src/db/") {
        rules.push(Rule::WalExpectConfined);
    }
    if crate_name == "lobster" {
        rules.push(Rule::JournalCoverage);
    }
    if is_sim_crate {
        rules.push(Rule::FloatOrder);
        rules.push(Rule::SharedMutInSim);
        rules.push(Rule::WildcardEventMatch);
    }
    rules
}

/// Lint one file's source. `rel_path` determines rule scoping; findings
/// suppressed by allow markers or the `#[cfg(test)]` trailer are omitted.
/// Fails (does not panic) on source with unbalanced delimiters.
pub fn lint_source(rel_path: &str, source: &str) -> Result<Vec<Finding>, LintError> {
    let active = applicable_rules(rel_path);
    let tokens = lexer::lex(source);
    let allows = collect_allows(&tokens);
    let test_line = test_boundary_line(&tokens);
    let forest =
        tree::build(&tokens).map_err(|e| LintError::data(format!("{rel_path}: {}", e.msg)))?;

    let mut hits = rules::scan_patterns(&forest, &active);
    if active.contains(&Rule::FloatOrder) {
        hits.extend(rules::scan_float_order(&forest));
    }
    if active.contains(&Rule::WildcardEventMatch) {
        hits.extend(rules::scan_wildcard_event(&forest));
    }
    if active.contains(&Rule::JournalCoverage) {
        hits.extend(journal::scan_journal_coverage(&forest));
    }

    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings: Vec<Finding> = hits
        .into_iter()
        .filter(|h| {
            let line = h.span.line as usize;
            if test_line.is_some_and(|t| line >= t) {
                return false;
            }
            if allows.file_rules.contains(&h.rule) {
                return false;
            }
            !allows.lines.contains(&(h.rule, line))
        })
        .map(|h| Finding {
            rule: h.rule,
            file: rel_path.to_string(),
            line: h.span.line as usize,
            col: h.span.col as usize,
            content: raw_lines
                .get(h.span.line as usize - 1)
                .map(|l| l.trim())
                .unwrap_or("")
                .to_string(),
            baselined: false,
        })
        .collect();
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings.dedup();
    Ok(findings)
}

// ---- workspace walking -----------------------------------------------------

/// Is this repo-relative path library code in scope for linting?
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.ends_with(".rs")
        && rel.contains("/src/")
        && !rel.contains("/bin/")
        && !rel.contains("/fixtures/")
        && !rel.ends_with("/main.rs")
}

fn walk_dir(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_dir(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// All in-scope library files under `<root>/crates`, sorted.
pub fn collect_files(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    let mut all = Vec::new();
    walk_dir(&crates_dir, &mut all)?;
    let mut files: Vec<(String, PathBuf)> = all
        .into_iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(root)
                .ok()?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            in_scope(&rel).then_some((rel, path))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Lint the whole workspace under `root`. Findings are sorted by
/// `(file, line, col, rule)` and not yet baseline-marked.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintError> {
    let mut findings = Vec::new();
    for (rel, path) in collect_files(root)? {
        let source = fs::read_to_string(&path)
            .map_err(|e| LintError::data(format!("reading {rel}: {e}")))?;
        findings.extend(lint_source(&rel, &source)?);
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(findings)
}

// ---- baseline --------------------------------------------------------------

/// FNV-1a 64-bit — the workspace's standard content hash.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Baseline key: `(rule-name, file, content-hash, occurrence-index)`.
/// The occurrence index counts identical `(rule, file, hash)` findings in
/// file order, so N identical lines produce N distinct keys — removing
/// one of them un-baselines exactly one finding.
pub type Baseline = BTreeSet<(String, String, u64, usize)>;

/// Assign each finding its occurrence index: findings must already be in
/// workspace order (`lint_workspace` order). Returns keys parallel to
/// `findings`.
fn occurrence_keys(findings: &[Finding]) -> Vec<(String, String, u64, usize)> {
    let mut counts: std::collections::BTreeMap<(String, String, u64), usize> =
        std::collections::BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let base = (
                f.rule.name().to_string(),
                f.file.clone(),
                fnv1a64(&f.content),
            );
            let occ = counts.entry(base.clone()).or_insert(0);
            let key = (base.0, base.1, base.2, *occ);
            *occ += 1;
            key
        })
        .collect()
}

/// Parse a baseline file. Format (v2, tab-separated):
/// `rule<TAB>file<TAB><16-hex-hash>#<occurrence><TAB>content`.
/// Blank lines and `#` comments are skipped. v1 three-field lines are
/// rejected with a pointer to `--write-baseline`.
pub fn parse_baseline(text: &str) -> Result<Baseline, LintError> {
    let mut baseline = Baseline::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, '\t').collect();
        let bad = |why: &str| LintError::data(format!("baseline line {}: {}", idx + 1, why));
        if fields.len() == 3 {
            return Err(bad("v1 (rule, file, content) key — regenerate with \
                 `cargo run -p simlint -- --write-baseline`"));
        }
        let [rule, file, key, content] = fields[..] else {
            return Err(bad("expected rule<TAB>file<TAB>hash#occ<TAB>content"));
        };
        if Rule::from_name(rule).is_none() {
            return Err(bad(&format!("unknown rule `{rule}`")));
        }
        let Some((hash_hex, occ_str)) = key.split_once('#') else {
            return Err(bad("key is not <hash>#<occurrence>"));
        };
        let Ok(hash) = u64::from_str_radix(hash_hex, 16) else {
            return Err(bad("hash is not 16 hex digits"));
        };
        let Ok(occ) = occ_str.parse::<usize>() else {
            return Err(bad("occurrence index is not a number"));
        };
        if fnv1a64(content) != hash {
            return Err(bad("content does not match its hash — hand-edited?"));
        }
        baseline.insert((rule.to_string(), file.to_string(), hash, occ));
    }
    Ok(baseline)
}

/// Render findings as a baseline file (sorted, one entry per occurrence).
pub fn render_baseline(findings: &[Finding]) -> String {
    let keys = occurrence_keys(findings);
    let mut lines: Vec<String> = findings
        .iter()
        .zip(&keys)
        .map(|(f, (rule, file, hash, occ))| {
            format!("{rule}\t{file}\t{hash:016x}#{occ}\t{}", f.content)
        })
        .collect();
    lines.sort();
    let mut out = String::from(
        "# simlint baseline — accepted findings, keyed on\n\
         # (rule, file, fnv1a64(content), occurrence-index).\n\
         # v2 format: the content hash keeps keys stable under line drift; the\n\
         # occurrence index keeps identical lines from aliasing (v1 collapsed\n\
         # duplicates to one key). v1 three-field files no longer parse.\n\
         # Regenerate with: cargo run -p simlint -- --write-baseline\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Mark findings covered by the baseline. Findings must be in workspace
/// order so occurrence indexes line up with `render_baseline`'s.
pub fn apply_baseline(findings: &mut [Finding], baseline: &Baseline) {
    let keys = occurrence_keys(findings);
    for (f, key) in findings.iter_mut().zip(&keys) {
        if baseline.contains(key) {
            f.baselined = true;
        }
    }
}

// ---- output ----------------------------------------------------------------

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON report object (`--format json`).
pub fn render_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
                 \"content\":\"{}\",\"message\":\"{}\",\"baselined\":{}}}",
                f.rule.name(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.content),
                json_escape(f.rule.message()),
                f.baselined
            )
        })
        .collect();
    let fresh = findings.iter().filter(|f| !f.baselined).count();
    format!(
        "{{\"schema\":\"simlint/2\",\"findings\":[\n{}\n],\
         \"summary\":{{\"new\":{},\"baselined\":{}}}}}\n",
        items.join(",\n"),
        fresh,
        findings.len() - fresh
    )
}

/// Render the human report: one `file:line:col: rule: message` per
/// non-baselined finding, then a per-rule summary.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings.iter().filter(|f| !f.baselined) {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let mut fresh = std::collections::BTreeMap::new();
    let mut base = std::collections::BTreeMap::new();
    for f in findings {
        *if f.baselined { &mut base } else { &mut fresh }
            .entry(f.rule.name())
            .or_insert(0) += 1;
    }
    out.push_str("simlint summary:\n");
    for rule in Rule::ALL {
        out.push_str(&format!(
            "  {:<24} {:>4} new {:>4} baselined\n",
            rule.name(),
            fresh.get(rule.name()).copied().unwrap_or(0),
            base.get(rule.name()).copied().unwrap_or(0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_ok(rel: &str, src: &str) -> Vec<Finding> {
        lint_source(rel, src).expect("source parses")
    }

    fn rules_hit(rel: &str, src: &str) -> Vec<Rule> {
        let mut rules: Vec<Rule> = lint_ok(rel, src).into_iter().map(|f| f.rule).collect();
        rules.dedup();
        rules
    }

    // ---- fixtures: each trips exactly its own rule ----

    #[test]
    fn fixture_wall_clock() {
        let src = include_str!("../fixtures/wall_clock.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn fixture_ambient_rng() {
        let src = include_str!("../fixtures/ambient_rng.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::AmbientRng]
        );
    }

    #[test]
    fn fixture_unordered_iteration() {
        let src = include_str!("../fixtures/unordered_iteration.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::UnorderedIteration]
        );
    }

    #[test]
    fn fixture_panic_in_lib() {
        let src = include_str!("../fixtures/panic_in_lib.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::PanicInLib]
        );
    }

    #[test]
    fn fixture_wal_expect() {
        let src = include_str!("../fixtures/wal_expect.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", src),
            vec![Rule::WalExpectConfined]
        );
    }

    #[test]
    fn fixture_allowed_is_clean() {
        let src = include_str!("../fixtures/allowed.rs");
        assert_eq!(lint_ok("crates/simkit/src/fixture.rs", src), vec![]);
    }

    #[test]
    fn fixture_journal_coverage_pair() {
        let clean = include_str!("../fixtures/journal_coverage_clean.rs");
        assert_eq!(rules_hit("crates/lobster/src/db/mod.rs", clean), vec![]);
        let bad = include_str!("../fixtures/journal_coverage_violating.rs");
        let findings = lint_ok("crates/lobster/src/db/mod.rs", bad);
        let jc: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == Rule::JournalCoverage)
            .collect();
        // One direct field write, one unsanctioned call into the subtree.
        assert_eq!(jc.len(), 2);
    }

    #[test]
    fn fixture_float_order_pair() {
        let clean = include_str!("../fixtures/float_order_clean.rs");
        assert_eq!(rules_hit("crates/simkit/src/fixture.rs", clean), vec![]);
        let bad = include_str!("../fixtures/float_order_violating.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", bad),
            vec![Rule::FloatOrder]
        );
    }

    #[test]
    fn fixture_shared_mut_pair() {
        let clean = include_str!("../fixtures/shared_mut_clean.rs");
        assert_eq!(rules_hit("crates/simkit/src/fixture.rs", clean), vec![]);
        let bad = include_str!("../fixtures/shared_mut_violating.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", bad),
            vec![Rule::SharedMutInSim]
        );
    }

    #[test]
    fn fixture_wildcard_event_pair() {
        let clean = include_str!("../fixtures/wildcard_event_clean.rs");
        assert_eq!(rules_hit("crates/simkit/src/fixture.rs", clean), vec![]);
        let bad = include_str!("../fixtures/wildcard_event_violating.rs");
        assert_eq!(
            rules_hit("crates/simkit/src/fixture.rs", bad),
            vec![Rule::WildcardEventMatch]
        );
    }

    // ---- the acceptance check: a seeded LobsterDb bypass is caught ----

    #[test]
    fn journal_coverage_catches_seeded_bypass_in_real_db() {
        let real = include_str!("../../lobster/src/db/mod.rs");
        // The real journal layer is clean: every sanctioned exception
        // carries an inline allow.
        let findings = lint_ok("crates/lobster/src/db/mod.rs", real);
        assert!(
            findings.iter().all(|f| f.rule != Rule::JournalCoverage),
            "unexpected journal-coverage findings in db.rs: {:?}",
            findings
                .iter()
                .filter(|f| f.rule == Rule::JournalCoverage)
                .collect::<Vec<_>>()
        );
        // Seed a mutation that bypasses apply, spliced in before the test
        // trailer so it counts as library code.
        let marker = "#[cfg(test)]";
        let pos = real.find(marker).expect("db.rs has a test trailer");
        let seeded = format!(
            "{}impl LobsterDb {{\n    pub fn sneak_done(&mut self, id: TaskId) {{\n        \
             self.done_order.push(id);\n    }}\n}}\n\n{}",
            &real[..pos],
            &real[pos..]
        );
        let findings = lint_ok("crates/lobster/src/db/mod.rs", &seeded);
        assert!(
            findings.iter().any(|f| f.rule == Rule::JournalCoverage
                && (f.content.contains("sneak") || f.content.contains("done_order"))),
            "seeded bypass was not caught"
        );
    }

    // ---- scoping ----

    #[test]
    fn wall_clock_only_in_sim_crates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit("crates/simlint/src/x.rs", src), vec![]);
        assert_eq!(
            rules_hit("crates/wqueue/src/x.rs", src),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn rng_module_is_exempt_from_rng_rule() {
        let src = "fn f() { let r = thread_rng(); }\n";
        assert_eq!(rules_hit("crates/simkit/src/rng.rs", src), vec![]);
        assert_eq!(
            rules_hit("crates/simkit/src/engine.rs", src),
            vec![Rule::AmbientRng]
        );
    }

    #[test]
    fn new_rules_scoped_to_sim_crates() {
        let src = "fn f() { let c = RefCell::new(0u32); }\n";
        assert_eq!(rules_hit("crates/simlint/src/x.rs", src), vec![]);
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), vec![]);
        assert_eq!(
            rules_hit("crates/simkit/src/x.rs", src),
            vec![Rule::SharedMutInSim]
        );
    }

    #[test]
    fn journal_rule_dormant_outside_db_impls() {
        // lobster files without an `impl LobsterDb` are untouched.
        let src = "pub fn helper(db: &mut LobsterDb) { db.tick(); }\n";
        assert_eq!(rules_hit("crates/lobster/src/driver.rs", src), vec![]);
    }

    #[test]
    fn wal_expects_confined_to_db() {
        let src = include_str!("../fixtures/wal_expect.rs");
        // The journal layer itself owns the idiom…
        assert_eq!(rules_hit("crates/lobster/src/db/mod.rs", src), vec![]);
        // …every other library file trips the rule.
        assert_eq!(
            rules_hit("crates/lobster/src/driver.rs", src),
            vec![Rule::WalExpectConfined]
        );
        // A comment mentioning the idiom next to an unrelated expect does
        // not trip it.
        let src = "// .expect(\"journal write\") is db-only\n\
                   // simlint::allow(no-panic-in-lib): fixture\n\
                   let x = y.expect(\"present\");\n";
        assert_eq!(rules_hit("crates/lobster/src/driver.rs", src), vec![]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
        // `#[cfg(not(test))]` is not a test boundary.
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_hit("crates/simkit/src/x.rs", src),
            vec![Rule::PanicInLib]
        );
    }

    #[test]
    fn scope_filter() {
        assert!(in_scope("crates/simkit/src/engine.rs"));
        assert!(!in_scope("crates/simkit/src/main.rs"));
        assert!(!in_scope("crates/bench/src/bin/fig9.rs"));
        assert!(!in_scope("crates/simlint/fixtures/wall_clock.rs"));
        assert!(!in_scope("crates/simkit/tests/proptests.rs"));
        assert!(!in_scope("vendor/serde/src/lib.rs"));
    }

    // ---- lexical details ----

    #[test]
    fn spans_carry_columns() {
        let f = lint_ok("crates/simkit/src/x.rs", "fn f() {     x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].col, 15); // the `.` of `.unwrap()`
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "// HashMap in a comment\nfn f() { let s = \"Instant::now\"; }\n\
                   /* panic! in\n a block comment */\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
        // Raw strings too — a v1 `strip_noise` blind spot.
        let src = "fn f() -> &'static str { r#\"x.unwrap() panic!\"# }\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* panic! */ still comment .unwrap() */ fn f() {}\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\"' }\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn unwrap_ident_prefix_does_not_trip() {
        let src = "fn unwrap_all() { let x = unwrap_or(0); }\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn unbalanced_source_is_an_error() {
        let e = lint_source("crates/simkit/src/x.rs", "fn f() {").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Data);
    }

    // ---- allow markers ----

    #[test]
    fn allow_requires_reason() {
        let src = "x.unwrap(); // simlint::allow(no-panic-in-lib)\n";
        assert_eq!(
            rules_hit("crates/simkit/src/x.rs", src),
            vec![Rule::PanicInLib]
        );
        let src = "x.unwrap(); // simlint::allow(no-panic-in-lib): init-only\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_on_line_above() {
        let src = "// simlint::allow(no-panic-in-lib): invariant documented\nx.unwrap();\n";
        assert_eq!(rules_hit("crates/simkit/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_wrong_rule_does_not_suppress() {
        let src = "x.unwrap(); // simlint::allow(no-wall-clock): wrong rule\n";
        assert_eq!(
            rules_hit("crates/simkit/src/x.rs", src),
            vec![Rule::PanicInLib]
        );
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// simlint::allow-file(no-wall-clock): real-time harness\n\
                   fn a() -> Instant { Instant::now() }\n\
                   fn b() -> Instant { Instant::now() }\n";
        assert_eq!(rules_hit("crates/wqueue/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_knows_new_rule_names() {
        let src = "// simlint::allow(no-float-order): VecDeque window, insertion-ordered\n\
                   let t: f64 = self.window.iter().map(|w| *w).sum();\n";
        assert_eq!(rules_hit("crates/lobster/src/x.rs", src), vec![]);
    }

    // ---- baseline ----

    #[test]
    fn baseline_roundtrip() {
        let src = "fn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        let mut findings = lint_ok("crates/simkit/src/x.rs", src);
        assert_eq!(findings.len(), 2);
        let rendered = render_baseline(&findings);
        let parsed = parse_baseline(&rendered).expect("round-trips");
        apply_baseline(&mut findings, &parsed);
        assert!(findings.iter().all(|f| f.baselined));
    }

    #[test]
    fn baseline_duplicate_lines_do_not_alias() {
        // Three identical violating lines: v1 collapsed them to one key,
        // silently baselining all three. v2 keys each occurrence.
        let src = "a.unwrap();\na.unwrap();\na.unwrap();\n";
        let mut findings = lint_ok("crates/simkit/src/x.rs", src);
        assert_eq!(findings.len(), 3);
        let full = render_baseline(&findings);
        // Keep occurrences 0 and 1; drop 2.
        let partial: String = full
            .lines()
            .filter(|l| !l.contains("#2\t"))
            .map(|l| format!("{l}\n"))
            .collect();
        let baseline = parse_baseline(&partial).expect("parses");
        apply_baseline(&mut findings, &baseline);
        assert_eq!(findings.iter().filter(|f| f.baselined).count(), 2);
        assert_eq!(findings.iter().filter(|f| !f.baselined).count(), 1);
    }

    #[test]
    fn baseline_rejects_garbage_and_v1() {
        assert!(parse_baseline("not a baseline line").is_err());
        // v1 three-field format gets a migration pointer.
        let e = parse_baseline("no-panic-in-lib\tf.rs\tcontent").unwrap_err();
        assert!(e.msg.contains("--write-baseline"));
        assert!(parse_baseline("no-such-rule\tf.rs\t0#0\tx").is_err());
        // A tampered hash is rejected.
        let e =
            parse_baseline("no-panic-in-lib\tf.rs\t0000000000000000#0\tx.unwrap();").unwrap_err();
        assert!(e.msg.contains("hash"));
        assert!(parse_baseline("# comment\n\n").unwrap().is_empty());
    }

    // ---- output ----

    #[test]
    fn json_output_is_wellformed() {
        let findings = lint_ok(
            "crates/simkit/src/x.rs",
            "fn f(m: &HashMap<u64, u64>) { g(\"x\"); }\n",
        );
        let json = render_json(&findings);
        assert!(json.starts_with("{\"schema\":\"simlint/2\""));
        assert!(json.contains("\"rule\":\"no-unordered-iteration\""));
        assert!(json.contains("\"line\":1"));
        assert!(json.contains("\"col\":"));
        assert!(json.contains("\"summary\":{\"new\":1,\"baselined\":0}"));
    }

    #[test]
    fn human_output_has_location_and_summary() {
        let findings = lint_ok(
            "crates/simkit/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        let human = render_human(&findings);
        assert!(human.contains("crates/simkit/src/x.rs:1:18: no-wall-clock:"));
        assert!(human.contains("simlint summary:"));
        assert!(human.contains("journal-coverage"));
    }

    #[test]
    fn explain_covers_every_rule() {
        for rule in Rule::ALL {
            assert!(
                rule.explain().len() > 80,
                "{} explain too thin",
                rule.name()
            );
        }
    }
}
