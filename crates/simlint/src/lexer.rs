//! A small hand-rolled Rust lexer.
//!
//! Produces a flat stream of spanned tokens: identifiers (keywords are not
//! distinguished), lifetimes, number/string/char literals, operators
//! (longest-match, so `::`, `=>`, `+=`, `..=` are single tokens and never
//! confused with `:`, `=`, `+`, `..`), delimiters, and comments. Comments
//! are kept as tokens — the allow-marker parser reads them — and filtered
//! out later when token trees are built.
//!
//! The lexer is total: any input produces a token stream without panicking.
//! Unterminated strings, chars, or block comments are closed at end of
//! input (the resulting token still carries the text seen), which keeps
//! property tests over arbitrary input meaningful and keeps the linter from
//! dying on a half-saved file. Token `text` is always the exact source
//! slice, so concatenating token texts (plus whitespace) reconstructs the
//! input — the round-trip property the lexer proptest pins.

use std::fmt;

/// A 1-based source position (column counted in characters).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column, in characters.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Delimiter kind for `Open`/`Close` tokens.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `(` `)`
    Paren,
    /// `[` `]`
    Bracket,
    /// `{` `}`
    Brace,
}

/// Token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'lifetime` (no closing quote).
    Lifetime,
    /// Integer or float literal, including suffix (`1_000u64`, `2.5e-3`).
    Number,
    /// String literal: cooked, raw, or byte (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Operator / punctuation, longest-match (`::`, `=>`, `+=`, `..`, `#`).
    Op,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
    /// Line or block comment, text included.
    Comment,
}

/// One lexed token: kind, exact source text, and start position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: String,
    /// Where the token starts.
    pub span: Span,
}

impl Token {
    /// For `Str` tokens: the literal's content with prefix (`r`, `b`),
    /// hash guards, and quotes stripped; escapes are left as written.
    /// `None` for other kinds.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let s = self.text.trim_start_matches(['r', 'b']);
        let s = s.trim_start_matches('#');
        let s = s.strip_prefix('"').unwrap_or(s);
        let s = s.trim_end_matches('#');
        let s = s.strip_suffix('"').unwrap_or(s);
        Some(s)
    }
}

/// Can `c` start an identifier?
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Can `c` continue an identifier?
fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-character operators, longest first within each length class.
const OPS3: [&str; 4] = ["<<=", ">>=", "..=", "..."];
const OPS2: [&str; 20] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<", ">>", "..",
];

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consume `n` characters into a String.
    fn take(&mut self, n: usize) -> String {
        let mut s = String::new();
        for _ in 0..n {
            match self.bump() {
                Some(c) => s.push(c),
                None => break,
            }
        }
        s
    }

    fn emit(&mut self, kind: TokKind, text: String, span: Span) {
        self.out.push(Token { kind, text, span });
    }

    /// Length in chars of a raw/byte/cooked string starting at `self.i`,
    /// or `None` if `self.i` does not start a string literal. Handles the
    /// `r`/`b`/`rb`/`br` prefixes and `#` guards.
    fn string_len(&self) -> Option<usize> {
        let mut j = 0;
        let mut raw = false;
        // Prefix: at most two of r/b (in either order, as rustc accepts
        // `br` and the lexer is permissive about `rb`).
        while j < 2 {
            match self.peek(j) {
                Some('r') => {
                    raw = true;
                    j += 1;
                }
                Some('b') => j += 1,
                _ => break,
            }
        }
        let mut hashes = 0;
        if raw {
            while self.peek(j + hashes) == Some('#') {
                hashes += 1;
            }
        }
        if self.peek(j + hashes) != Some('"') {
            return None;
        }
        if j == 0 && hashes == 0 && self.peek(0) != Some('"') {
            return None;
        }
        let mut k = j + hashes + 1; // past the opening quote
        loop {
            match self.peek(k) {
                None => return Some(k), // unterminated: to end of input
                Some('\\') if !raw => k += 2,
                Some('"') => {
                    if hashes == 0 {
                        return Some(k + 1);
                    }
                    let mut h = 0;
                    while h < hashes && self.peek(k + 1 + h) == Some('#') {
                        h += 1;
                    }
                    if h == hashes {
                        return Some(k + 1 + hashes);
                    }
                    k += 1;
                }
                Some(_) => k += 1,
            }
        }
    }

    fn lex_number(&mut self, span: Span) {
        let mut n = 0;
        while self.peek(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        // Fraction: a dot followed by a digit (never `..`).
        if self.peek(n) == Some('.') && self.peek(n + 1).is_some_and(|c| c.is_ascii_digit()) {
            n += 1;
            while self.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
        }
        // Signed exponent: `1e-3`, `2.5E+7` (the sign stops the ident run).
        while self.peek(n) == Some('+') || self.peek(n) == Some('-') {
            let prev = self.peek(n.wrapping_sub(1));
            let starts_hex = self.peek(0) == Some('0')
                && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('o'));
            if starts_hex || !matches!(prev, Some('e') | Some('E')) {
                break;
            }
            n += 1;
            while self.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
        }
        let text = self.take(n);
        self.emit(TokKind::Number, text, span);
    }

    /// Lex a `'…` token: lifetime or char literal.
    fn lex_quote(&mut self, span: Span) {
        if self.peek(1) == Some('\\') {
            // Escaped char: a backslash always escapes the next character,
            // so `'\''` is four chars. Scan past escape pairs to the
            // closing quote.
            let mut n = 1;
            loop {
                match self.peek(n) {
                    Some('\\') => n += 2,
                    Some('\'') => {
                        n += 1;
                        break;
                    }
                    Some(_) => n += 1,
                    None => break,
                }
            }
            let text = self.take(n);
            self.emit(TokKind::Char, text, span);
        } else if self.peek(2) == Some('\'') && self.peek(1).is_some() {
            // 'x' — any single char (possibly multi-byte).
            let text = self.take(3);
            self.emit(TokKind::Char, text, span);
        } else if self.peek(1).is_some_and(is_ident_start) {
            // Lifetime: no closing quote.
            let mut n = 2;
            while self.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            let text = self.take(n);
            self.emit(TokKind::Lifetime, text, span);
        } else {
            let text = self.take(1);
            self.emit(TokKind::Op, text, span);
        }
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let span = Span {
                line: self.line,
                col: self.col,
            };
            // Comments.
            if c == '/' && self.peek(1) == Some('/') {
                let mut n = 2;
                while self.peek(n).is_some_and(|c| c != '\n') {
                    n += 1;
                }
                let text = self.take(n);
                self.emit(TokKind::Comment, text, span);
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                let mut depth = 1usize;
                let mut n = 2;
                while depth > 0 {
                    match (self.peek(n), self.peek(n + 1)) {
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            n += 2;
                        }
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            n += 2;
                        }
                        (Some(_), _) => n += 1,
                        (None, _) => break,
                    }
                }
                let text = self.take(n);
                self.emit(TokKind::Comment, text, span);
                continue;
            }
            // String literals (incl. r/b prefixes) — must run before idents
            // so `r"…"` is not lexed as the ident `r`.
            if (c == '"' || c == 'r' || c == 'b') && self.string_len().is_some() {
                if let Some(n) = self.string_len() {
                    if c == '"' {
                        let text = self.take(n);
                        self.emit(TokKind::Str, text, span);
                        continue;
                    }
                    // Only treat r/b as a prefix when a quote actually
                    // follows; `b'x'` is handled below as ident + char.
                    let has_quote = (0..n).any(|k| self.peek(k) == Some('"'));
                    if has_quote {
                        let text = self.take(n);
                        self.emit(TokKind::Str, text, span);
                        continue;
                    }
                }
            }
            if c == '\'' {
                self.lex_quote(span);
                continue;
            }
            if is_ident_start(c) {
                let mut n = 1;
                while self.peek(n).is_some_and(is_ident_continue) {
                    n += 1;
                }
                let text = self.take(n);
                self.emit(TokKind::Ident, text, span);
                continue;
            }
            if c.is_ascii_digit() {
                self.lex_number(span);
                continue;
            }
            match c {
                '(' => {
                    let text = self.take(1);
                    self.emit(TokKind::Open(Delim::Paren), text, span);
                }
                ')' => {
                    let text = self.take(1);
                    self.emit(TokKind::Close(Delim::Paren), text, span);
                }
                '[' => {
                    let text = self.take(1);
                    self.emit(TokKind::Open(Delim::Bracket), text, span);
                }
                ']' => {
                    let text = self.take(1);
                    self.emit(TokKind::Close(Delim::Bracket), text, span);
                }
                '{' => {
                    let text = self.take(1);
                    self.emit(TokKind::Open(Delim::Brace), text, span);
                }
                '}' => {
                    let text = self.take(1);
                    self.emit(TokKind::Close(Delim::Brace), text, span);
                }
                _ => {
                    let head: String = (0..3).filter_map(|k| self.peek(k)).collect();
                    let len = if OPS3.iter().any(|o| head.starts_with(o)) {
                        3
                    } else if OPS2.iter().any(|o| head.starts_with(o)) {
                        2
                    } else {
                        1
                    };
                    let text = self.take(len);
                    self.emit(TokKind::Op, text, span);
                }
            }
        }
    }
}

/// Lex `source` into a token stream. Total: never fails, never panics.
pub fn lex(source: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    };
    lx.run();
    lx.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_ops_and_delims() {
        let toks = kinds("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(toks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[2], (TokKind::Open(Delim::Paren), "(".into()));
        assert!(toks.contains(&(TokKind::Op, "->".into())));
        assert!(toks.contains(&(TokKind::Number, "1".into())));
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let toks = kinds("a::b => c += d..=e;");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Op)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["::", "=>", "+=", "..=", ";"]);
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = kinds(r####"let s = "a\"b"; let r = r#"x "y" z"#;"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].starts_with('"'));
        assert!(strs[1].starts_with("r#\""));
        let t = lex("x.expect(\"journal write\")");
        let s = t.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.str_content(), Some("journal write"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        let toks = kinds(r"let c = '\n'; let q = '\'';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec![r"'\n'", r"'\''"]);
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let toks = kinds("1_000u64 2.5e-3 0x1f 7.0f64 0..n");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "2.5e-3", "0x1f", "7.0f64", "0"]);
        assert!(toks.contains(&(TokKind::Op, "..".into())));
    }

    #[test]
    fn comments_are_tokens_and_nest() {
        let toks = kinds("a /* x /* y */ z */ b // tail");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert_eq!(toks[3], (TokKind::Comment, "// tail".into()));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("ab cd\n  ef");
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 1, col: 4 });
        assert_eq!(toks[2].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn round_trip_is_lossless_modulo_whitespace() {
        let src = "fn f() { let s = \"a b\"; x += 1.5; /* c */ }";
        let joined: String = lex(src)
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        // Every non-whitespace char of the source survives, in order.
        let a: String = src.chars().filter(|c| !c.is_whitespace()).collect();
        let b: String = joined.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"x"] {
            let _ = lex(src);
        }
    }
}
