//! Token trees: the lexer's flat stream nested by delimiter.
//!
//! A tree is either a leaf token or a delimited group with children.
//! Comments are dropped here (the allow-marker parser consumes them from
//! the flat stream before this point). Building fails — it does not panic —
//! on unbalanced or mismatched delimiters, which the CLI surfaces as a
//! parse error (exit 3) rather than a lint finding.

use crate::lexer::{Delim, Span, TokKind, Token};

/// A node in the token tree.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A single non-delimiter token.
    Leaf(Token),
    /// A delimited group: `( … )`, `[ … ]`, `{ … }`.
    Group {
        /// Which delimiter pair.
        delim: Delim,
        /// Span of the opening delimiter.
        open: Span,
        /// Span of the closing delimiter (end of input if unterminated).
        close: Span,
        /// The nested trees.
        children: Vec<Tree>,
    },
}

impl Tree {
    /// The node's starting span.
    pub fn span(&self) -> Span {
        match self {
            Tree::Leaf(t) => t.span,
            Tree::Group { open, .. } => *open,
        }
    }

    /// The identifier text, if this is an `Ident` leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// The operator text, if this is an `Op` leaf.
    pub fn op(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) if t.kind == TokKind::Op => Some(&t.text),
            _ => None,
        }
    }

    /// Is this the operator `name`?
    pub fn is_op(&self, name: &str) -> bool {
        self.op() == Some(name)
    }

    /// The group's children, if this is a group of kind `delim`.
    pub fn group(&self, want: Delim) -> Option<&[Tree]> {
        match self {
            Tree::Group {
                delim, children, ..
            } if *delim == want => Some(children),
            _ => None,
        }
    }

    /// The leaf token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            _ => None,
        }
    }
}

/// A delimiter-balance error found while building trees.
#[derive(Debug)]
pub struct TreeError {
    /// Where the offending delimiter is.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

fn close_char(d: Delim) -> char {
    match d {
        Delim::Paren => ')',
        Delim::Bracket => ']',
        Delim::Brace => '}',
    }
}

/// Nest a token stream into trees, dropping comment tokens.
pub fn build(tokens: &[Token]) -> Result<Vec<Tree>, TreeError> {
    // Iterative with an explicit stack so deeply nested input can't blow
    // the call stack.
    let mut stack: Vec<(Delim, Span, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in tokens {
        match tok.kind {
            TokKind::Comment => {}
            TokKind::Open(d) => {
                stack.push((d, tok.span, std::mem::take(&mut top)));
            }
            TokKind::Close(d) => match stack.pop() {
                Some((open_d, open_span, parent)) if open_d == d => {
                    let children = std::mem::replace(&mut top, parent);
                    top.push(Tree::Group {
                        delim: d,
                        open: open_span,
                        close: tok.span,
                        children,
                    });
                }
                Some((open_d, open_span, _)) => {
                    return Err(TreeError {
                        span: tok.span,
                        msg: format!(
                            "mismatched delimiter: `{}` at {} closed by `{}` at {}",
                            match open_d {
                                Delim::Paren => '(',
                                Delim::Bracket => '[',
                                Delim::Brace => '{',
                            },
                            open_span,
                            close_char(d),
                            tok.span
                        ),
                    });
                }
                None => {
                    return Err(TreeError {
                        span: tok.span,
                        msg: format!("unmatched closing `{}` at {}", close_char(d), tok.span),
                    });
                }
            },
            _ => top.push(Tree::Leaf(tok.clone())),
        }
    }
    if let Some((d, span, _)) = stack.pop() {
        return Err(TreeError {
            span,
            msg: format!(
                "unclosed delimiter `{}` opened at {}",
                match d {
                    Delim::Paren => '(',
                    Delim::Bracket => '[',
                    Delim::Brace => '{',
                },
                span
            ),
        });
    }
    Ok(top)
}

/// Visit every sibling list in the forest (the top-level list and each
/// group's child list), outermost first.
pub fn walk_lists<'a>(trees: &'a [Tree], visit: &mut dyn FnMut(&'a [Tree])) {
    visit(trees);
    // Explicit work list, again to stay safe on pathological nesting.
    let mut work: Vec<&'a [Tree]> = vec![trees];
    while let Some(list) = work.pop() {
        for t in list {
            if let Tree::Group { children, .. } = t {
                visit(children);
                work.push(children);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn forest(src: &str) -> Vec<Tree> {
        build(&lex(src)).expect("balanced")
    }

    #[test]
    fn nests_groups() {
        let f = forest("fn f(a: u32) { g([1, 2]); }");
        assert!(f[0].is_ident("fn"));
        let body = f
            .iter()
            .find_map(|t| t.group(Delim::Brace))
            .expect("brace group");
        let call_args = body
            .iter()
            .find_map(|t| t.group(Delim::Paren))
            .expect("paren group");
        assert!(call_args[0].group(Delim::Bracket).is_some());
    }

    #[test]
    fn comments_are_dropped() {
        let f = forest("a /* x */ b // y");
        assert_eq!(f.len(), 2);
        assert!(f[1].is_ident("b"));
    }

    #[test]
    fn unbalanced_is_an_error_not_a_panic() {
        assert!(build(&lex("fn f( {")).is_err());
        assert!(build(&lex(")")).is_err());
        assert!(build(&lex("( ]")).is_err());
    }

    #[test]
    fn walk_lists_sees_every_sibling_list() {
        let f = forest("a { b ( c ) } d");
        let mut lists = 0;
        walk_lists(&f, &mut |_| lists += 1);
        // top-level, brace children, paren children.
        assert_eq!(lists, 3);
    }

    #[test]
    fn spans_survive_into_trees() {
        let f = forest("x\n  (y)");
        assert_eq!(f[0].span(), Span { line: 1, col: 1 });
        assert_eq!(f[1].span(), Span { line: 2, col: 3 });
    }
}
