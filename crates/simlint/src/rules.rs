//! Rule passes over token trees.
//!
//! Each pass returns raw [`RuleHit`]s (rule + span). Scoping by crate,
//! allow markers, `#[cfg(test)]` trailers, and the baseline are applied
//! centrally by `lint_source` — the passes here only answer "does this
//! pattern occur, and where".

use crate::lexer::{Delim, Span, TokKind};
use crate::tree::{walk_lists, Tree};
use crate::Rule;

/// One raw rule hit, before scoping/allow/baseline filtering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleHit {
    /// Which rule fired.
    pub rule: Rule,
    /// Where it fired.
    pub span: Span,
}

fn hit(rule: Rule, span: Span) -> RuleHit {
    RuleHit { rule, span }
}

/// Is this tree a group of `delim` kind?
fn is_group(t: Option<&Tree>, delim: Delim) -> bool {
    t.is_some_and(|t| t.group(delim).is_some())
}

/// Is this tree an empty `( )` group?
fn is_empty_paren(t: Option<&Tree>) -> bool {
    t.and_then(|t| t.group(Delim::Paren))
        .is_some_and(|c| c.is_empty())
}

// ---- rules 1–5 + 8: adjacency patterns -------------------------------------

/// Scan for the simple adjacency-pattern rules among `active`:
/// `no-wall-clock`, `no-ambient-rng`, `no-unordered-iteration`,
/// `no-panic-in-lib`, `wal-expect-confined`, `no-shared-mut-in-sim`.
pub fn scan_patterns(trees: &[Tree], active: &[Rule]) -> Vec<RuleHit> {
    let mut hits = Vec::new();
    let on = |r: Rule| active.contains(&r);
    walk_lists(trees, &mut |list| {
        for (i, t) in list.iter().enumerate() {
            let next = list.get(i + 1);
            let next2 = list.get(i + 2);
            if on(Rule::WallClock)
                && (t.is_ident("SystemTime") || t.is_ident("Instant"))
                && next.is_some_and(|n| n.is_op("::"))
                && next2.is_some_and(|n| n.is_ident("now"))
            {
                hits.push(hit(Rule::WallClock, t.span()));
            }
            if on(Rule::AmbientRng)
                && (t.is_ident("thread_rng")
                    || t.is_ident("from_entropy")
                    || (t.is_ident("StdRng")
                        && next.is_some_and(|n| n.is_op("::"))
                        && next2.is_some_and(|n| n.is_ident("seed_from_u64"))))
            {
                hits.push(hit(Rule::AmbientRng, t.span()));
            }
            if on(Rule::UnorderedIteration) && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
                hits.push(hit(Rule::UnorderedIteration, t.span()));
            }
            if on(Rule::PanicInLib) {
                // `.unwrap()` is the empty call only — `unwrap_or(…)` and
                // `.unwrap_or_else` are different idents.
                let unwrap_call = t.is_op(".")
                    && next.is_some_and(|n| n.is_ident("unwrap"))
                    && is_empty_paren(next2);
                let expect_call = t.is_op(".")
                    && next.is_some_and(|n| n.is_ident("expect"))
                    && is_group(next2, Delim::Paren);
                let panic_bang = t.is_ident("panic") && next.is_some_and(|n| n.is_op("!"));
                if unwrap_call || expect_call || panic_bang {
                    hits.push(hit(Rule::PanicInLib, t.span()));
                }
            }
            if on(Rule::WalExpectConfined)
                && t.is_op(".")
                && next.is_some_and(|n| n.is_ident("expect"))
            {
                let wal_msg = next2
                    .and_then(|n| n.group(Delim::Paren))
                    .and_then(|args| args.first())
                    .and_then(|a| a.leaf())
                    .filter(|tok| tok.kind == TokKind::Str)
                    .and_then(|tok| tok.str_content())
                    .is_some_and(|msg| {
                        ["journal", "snapshot", "compaction"]
                            .iter()
                            .any(|p| msg.starts_with(p))
                    });
                if wal_msg {
                    hits.push(hit(Rule::WalExpectConfined, t.span()));
                }
            }
            if on(Rule::SharedMutInSim)
                && (t.is_ident("Rc")
                    || t.is_ident("RefCell")
                    || t.is_ident("Cell")
                    || (t.is_ident("static") && next.is_some_and(|n| n.is_ident("mut")))
                    || (t.is_ident("thread_local") && next.is_some_and(|n| n.is_op("!"))))
            {
                hits.push(hit(Rule::SharedMutInSim, t.span()));
            }
        }
    });
    hits
}

// ---- rule 7: no-float-order ------------------------------------------------

/// Collect every leaf token's (kind, text) in a subforest, recursively.
fn leaves<'a>(trees: &'a [Tree], out: &mut Vec<&'a crate::lexer::Token>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok),
            Tree::Group { children, .. } => leaves(children, out),
        }
    }
}

/// Does this subforest carry lexical evidence of float arithmetic?
/// Evidence: an `f64`/`f32` ident, a float-looking number literal, or a
/// conversion method named `*_f64`/`*_f32`.
fn has_float_evidence(trees: &[Tree]) -> bool {
    let mut toks = Vec::new();
    leaves(trees, &mut toks);
    toks.iter().any(|tok| match tok.kind {
        TokKind::Ident => {
            tok.text == "f64"
                || tok.text == "f32"
                || tok.text.ends_with("_f64")
                || tok.text.ends_with("_f32")
        }
        TokKind::Number => {
            let t = &tok.text;
            !t.starts_with("0x")
                && !t.starts_with("0X")
                && (t.contains('.') || t.ends_with("f64") || t.ends_with("f32"))
        }
        _ => false,
    })
}

/// Does this subforest contain a range operator (`..` / `..=`)? Ranges are
/// the one iterator source whose order is proven by construction.
fn has_range(trees: &[Tree]) -> bool {
    let mut toks = Vec::new();
    leaves(trees, &mut toks);
    toks.iter()
        .any(|tok| tok.kind == TokKind::Op && (tok.text == ".." || tok.text == "..="))
}

/// The statement slice of `list` containing index `i`: bounded by the
/// nearest top-level `;` on each side. A top-level brace group is also a
/// boundary — block statements (`for`, `if`, `match`) end without a `;`,
/// and leaking across them would smuggle a neighbour's float evidence
/// into this statement.
fn statement_around(list: &[Tree], i: usize) -> &[Tree] {
    let boundary = |t: &Tree| t.is_op(";") || t.group(Delim::Brace).is_some();
    let start = list[..i].iter().rposition(boundary).map_or(0, |p| p + 1);
    let end = list[i..]
        .iter()
        .position(boundary)
        .map_or(list.len(), |p| i + p + 1);
    &list[start..end]
}

const COMPOUND_ASSIGN: [&str; 4] = ["+=", "-=", "*=", "/="];

/// `no-float-order`: flag non-associative float accumulation whose
/// evaluation order is not proven by an ordered source.
///
/// Two prongs:
/// 1. `.sum()` / `.product()` reductions with float evidence in the same
///    statement (or an `::<f64>` turbofish), unless the statement contains
///    a range (`0..n`) — ranges are ordered by construction.
/// 2. Float compound assignment (`+=` etc.) inside a `for` loop whose
///    iterator expression has no range provenance.
///
/// Anything flagged either gets fixed or carries an allow naming the
/// ordered source (`Vec`, `VecDeque`, const array, …).
pub fn scan_float_order(trees: &[Tree]) -> Vec<RuleHit> {
    let mut hits = Vec::new();
    // Prong 1: float reductions.
    walk_lists(trees, &mut |list| {
        for (i, t) in list.iter().enumerate() {
            if !t.is_op(".") {
                continue;
            }
            let Some(name) = list.get(i + 1).and_then(|n| n.ident()) else {
                continue;
            };
            if name != "sum" && name != "product" {
                continue;
            }
            let float = if list.get(i + 2).is_some_and(|n| n.is_op("::")) {
                // Turbofish names the element type explicitly.
                let ty: Vec<&str> = list[i + 3..]
                    .iter()
                    .take_while(|t| t.group(Delim::Paren).is_none())
                    .filter_map(|t| t.ident())
                    .collect();
                ty.iter().any(|s| *s == "f64" || *s == "f32")
            } else if is_group(list.get(i + 2), Delim::Paren) {
                has_float_evidence(statement_around(list, i))
            } else {
                false
            };
            if float && !has_range(statement_around(list, i)) {
                hits.push(hit(Rule::FloatOrder, t.span()));
            }
        }
    });
    // Prong 2: float accumulation in for loops.
    scan_loops(trees, false, &mut hits);
    hits
}

/// Recursive walk for prong 2. `in_unordered_loop` is true when the
/// innermost enclosing `for` loop's iterator lacks range provenance.
fn scan_loops(list: &[Tree], in_unordered_loop: bool, hits: &mut Vec<RuleHit>) {
    let mut i = 0;
    while i < list.len() {
        let t = &list[i];
        // A `for` loop: `for <pat> in <iter-expr> { body }`. `impl X for Y`
        // and HRTB `for<'a>` have no top-level `in` before their brace, so
        // they fall through to the plain-group recursion below.
        if t.is_ident("for") {
            let body_pos = list[i + 1..]
                .iter()
                .position(|t| t.group(Delim::Brace).is_some())
                .map(|p| i + 1 + p);
            let in_pos = list[i + 1..]
                .iter()
                .position(|t| t.is_ident("in"))
                .map(|p| i + 1 + p);
            if let (Some(body_pos), Some(in_pos)) = (body_pos, in_pos) {
                if in_pos < body_pos {
                    let iter_expr = &list[in_pos + 1..body_pos];
                    let ordered = has_range(iter_expr);
                    scan_loops(iter_expr, in_unordered_loop, hits);
                    if let Some(body) = list[body_pos].group(Delim::Brace) {
                        scan_loops(body, !ordered, hits);
                    }
                    i = body_pos + 1;
                    continue;
                }
            }
        }
        if in_unordered_loop
            && t.op().is_some_and(|o| COMPOUND_ASSIGN.contains(&o))
            && has_float_evidence(statement_around(list, i))
        {
            hits.push(hit(Rule::FloatOrder, t.span()));
        }
        if let Tree::Group { children, .. } = t {
            scan_loops(children, in_unordered_loop, hits);
        }
        i += 1;
    }
}

// ---- rule 9: no-wildcard-event-match ---------------------------------------

/// Does the pattern forest reference the event enum (`Ev::…`)?
fn mentions_event_enum(trees: &[Tree]) -> bool {
    let mut found = false;
    walk_lists(trees, &mut |list| {
        for (i, t) in list.iter().enumerate() {
            if t.is_ident("Ev") && list.get(i + 1).is_some_and(|n| n.is_op("::")) {
                found = true;
            }
        }
    });
    found
}

/// One match arm: pattern trees and the span of the pattern's first tree.
struct Arm<'a> {
    pattern: &'a [Tree],
}

/// Split a match body's child list into arms. Arm = `pattern => expr`
/// where expr is either a brace group (optionally followed by a comma) or
/// everything up to the next top-level comma.
fn split_arms(body: &[Tree]) -> Vec<Arm<'_>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let pat_start = i;
        while i < body.len() && !body[i].is_op("=>") {
            i += 1;
        }
        if i >= body.len() {
            break;
        }
        let pattern = &body[pat_start..i];
        i += 1; // past `=>`
        if body.get(i).is_some_and(|t| t.group(Delim::Brace).is_some()) {
            i += 1;
            if body.get(i).is_some_and(|t| t.is_op(",")) {
                i += 1;
            }
        } else {
            while i < body.len() && !body[i].is_op(",") {
                i += 1;
            }
            if i < body.len() {
                i += 1; // past `,`
            }
        }
        arms.push(Arm { pattern });
    }
    arms
}

/// `no-wildcard-event-match`: a `match` whose arms pattern on `Ev::…`
/// must not have a catch-all arm (`_ =>` or a bare binding) — new event
/// kinds must fail closed (compile error) rather than be silently dropped.
pub fn scan_wildcard_event(trees: &[Tree]) -> Vec<RuleHit> {
    let mut hits = Vec::new();
    walk_lists(trees, &mut |list| {
        for (i, t) in list.iter().enumerate() {
            if !t.is_ident("match") {
                continue;
            }
            // Body = the first top-level brace group after the scrutinee
            // (struct literals are illegal in scrutinee position).
            let Some(body) = list[i + 1..].iter().find_map(|t| t.group(Delim::Brace)) else {
                continue;
            };
            let arms = split_arms(body);
            if !arms.iter().any(|a| mentions_event_enum(a.pattern)) {
                continue;
            }
            for arm in &arms {
                // Pattern core: everything before a top-level `if` guard.
                let core_len = arm
                    .pattern
                    .iter()
                    .position(|t| t.is_ident("if"))
                    .unwrap_or(arm.pattern.len());
                let core = &arm.pattern[..core_len];
                // A one-token ident pattern — `_`, `_other`, or a bare
                // binding — catches every variant. (`Ev::X` has 3 tokens;
                // `Some(x)` has 2.)
                if core.len() == 1 && core[0].ident().is_some() {
                    hits.push(hit(Rule::WildcardEventMatch, core[0].span()));
                }
            }
        }
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn forest(src: &str) -> Vec<Tree> {
        build(&lex(src)).expect("balanced")
    }

    fn rules_of(hits: &[RuleHit]) -> Vec<Rule> {
        let mut v: Vec<Rule> = hits.iter().map(|h| h.rule).collect();
        v.dedup();
        v
    }

    #[test]
    fn unwrap_call_only() {
        let f = forest("fn unwrap_all() { x.unwrap(); y.unwrap_or(0); }");
        let hits = scan_patterns(&f, &[Rule::PanicInLib]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].span.line, 1);
    }

    #[test]
    fn wal_expect_needs_string_head() {
        let f = forest("a.expect(\"journal write failed\"); b.expect(msg);");
        let hits = scan_patterns(&f, &[Rule::WalExpectConfined]);
        assert_eq!(hits.len(), 1);
        let f = forest("a.expect(\"present\");");
        assert!(scan_patterns(&f, &[Rule::WalExpectConfined]).is_empty());
    }

    #[test]
    fn shared_mut_variants() {
        let f = forest(
            "struct S { a: Rc<u32>, b: RefCell<u32>, c: Cell<u32> }\n\
             static mut G: u32 = 0;\n\
             thread_local! { static T: u32 = 1; }",
        );
        let hits = scan_patterns(&f, &[Rule::SharedMutInSim]);
        assert_eq!(hits.len(), 5);
        // OnceCell / UnsafeCell are different idents and do not match.
        let f = forest("struct S { a: OnceCell<u32>, b: UnsafeCell<u32> }");
        assert!(scan_patterns(&f, &[Rule::SharedMutInSim]).is_empty());
    }

    #[test]
    fn float_sum_flags_and_range_exempts() {
        let f = forest("let x: f64 = xs.iter().map(|v| *v).sum();");
        assert_eq!(rules_of(&scan_float_order(&f)), vec![Rule::FloatOrder]);
        // Range source: ordered by construction.
        let f = forest("let x: f64 = (0..n).map(|i| f(i)).sum();");
        assert!(scan_float_order(&f).is_empty());
        // Integer sum: no float evidence.
        let f = forest("let x: u64 = xs.iter().sum();");
        assert!(scan_float_order(&f).is_empty());
        // Turbofish decides directly.
        let f = forest("let x = xs.iter().sum::<f64>();");
        assert_eq!(scan_float_order(&f).len(), 1);
        let f = forest("let x = xs.iter().sum::<u64>();");
        assert!(scan_float_order(&f).is_empty());
    }

    #[test]
    fn float_accumulation_in_loops() {
        let f = forest("for v in xs.iter() { acc += *v as f64; }");
        assert_eq!(scan_float_order(&f).len(), 1);
        let f = forest("for i in 0..n { acc += i as f64; }");
        assert!(scan_float_order(&f).is_empty());
        // Integer accumulation is fine anywhere.
        let f = forest("for v in xs.iter() { acc += *v; }");
        assert!(scan_float_order(&f).is_empty());
        // `impl X for Y` is not a loop.
        let f = forest("impl Add for F { fn add(self, o: F) -> F { F(self.0 + o.0) } }");
        assert!(scan_float_order(&f).is_empty());
    }

    #[test]
    fn wildcard_event_match() {
        let f = forest("match ev { Ev::A(x) => f(x), Ev::B { id } => g(id), _ => {} }");
        assert_eq!(scan_wildcard_event(&f).len(), 1);
        // Exhaustive event match is clean.
        let f = forest("match ev { Ev::A(x) => f(x), Ev::B { id } => g(id) }");
        assert!(scan_wildcard_event(&f).is_empty());
        // Wildcards on non-event enums are fine.
        let f = forest("match phase { Phase::Run => 1, _ => 0 }");
        assert!(scan_wildcard_event(&f).is_empty());
        // A bare binding is a wildcard too; a guard does not save it.
        let f = forest("match ev { Ev::A(x) => f(x), other if p(other) => g() }");
        assert_eq!(scan_wildcard_event(&f).len(), 1);
    }
}
