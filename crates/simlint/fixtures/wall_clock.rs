//! simlint fixture: trips `no-wall-clock` and nothing else.
//! Not compiled — scanned as text by the self-tests.

use std::time::Instant;

pub fn elapsed_ms(start: Instant) -> u128 {
    let later = Instant::now();
    later.duration_since(start).as_millis()
}
