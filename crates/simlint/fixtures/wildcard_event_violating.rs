//! simlint fixture: trips `no-wildcard-event-match` and nothing else —
//! catch-all arms in matches over the event enum, which would silently
//! drop any event kind added later. Not compiled.

pub fn dispatch(&mut self, ev: Ev) {
    match ev {
        Ev::TaskDone { id, .. } => self.on_done(id),
        Ev::WorkerLost(worker) => self.on_lost(worker),
        _ => {}
    }
}

pub fn classify(ev: &Ev) -> u32 {
    match ev {
        Ev::Heartbeat => 0,
        other => tag_of(other),
    }
}
