//! Fixture: a fatal WAL-style expect outside the journal layer. The
//! panic rule is line-allowed so the fixture isolates `wal-expect-confined`.

fn append(journal: &mut std::fs::File, frame: &[u8]) {
    use std::io::Write;
    // simlint::allow(no-panic-in-lib): fixture isolates the wal rule
    journal.write_all(frame).expect("journal write");
}
