//! simlint fixture: a miniature `LobsterDb` whose every state mutation
//! routes through `apply` — `journal-coverage` must report nothing.
//! Scanned as if it were `crates/lobster/src/db.rs`. Not compiled.

pub struct LobsterDb {
    tasks: BTreeMap<TaskId, TaskRow>,
    done_order: Vec<TaskId>,
    n_tasks: u64,
    journal: Option<Journal>,
}

impl LobsterDb {
    /// The single mutator: every journaled-state change replays through
    /// here, so WAL recovery reconstructs the database exactly.
    fn apply(&mut self, rec: Record) {
        match rec {
            Record::Create(row) => {
                self.tasks.insert(row.id, row);
                self.n_tasks += 1;
            }
            Record::Finish(id) => self.mark_done(id),
        }
    }

    /// Subtree helper: reached from `apply`, so its writes are sanctioned.
    fn mark_done(&mut self, id: TaskId) {
        self.done_order.push(id);
    }

    /// The sanctioned log-then-apply wrapper.
    pub fn apply_and_log(&mut self, rec: Record) {
        self.log(&rec);
        // simlint::allow(journal-coverage): log-then-apply wrapper; the one sanctioned entry point
        self.apply(rec);
    }

    /// Journal plumbing writes only unjournaled fields: fine.
    fn log(&mut self, rec: &Record) {
        if let Some(j) = self.journal.as_mut() {
            j.append(rec);
        }
    }

    /// Reads of journaled state are always fine.
    pub fn len(&self) -> u64 {
        self.n_tasks
    }

    pub fn last_done(&self) -> Option<&TaskId> {
        self.done_order.last()
    }
}
