//! simlint fixture: trips `no-panic-in-lib` and nothing else.
//! Not compiled — scanned as text by the self-tests.

pub fn head(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}
