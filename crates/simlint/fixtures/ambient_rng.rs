//! simlint fixture: trips `no-ambient-rng` and nothing else.
//! Not compiled — scanned as text by the self-tests.

pub fn roll_die() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64() % 6 + 1
}
