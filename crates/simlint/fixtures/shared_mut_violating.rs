//! simlint fixture: trips `no-shared-mut-in-sim` and nothing else — every
//! shared-mutability primitive the parallel engine cannot shard.
//! Not compiled.

pub struct Model {
    shared: Rc<Topology>,
    scratch: RefCell<Vec<u64>>,
    counter: Cell<u64>,
}

pub static mut GLOBAL_TICKS: u64 = 0;

thread_local! {
    pub static LOCAL_SEED: u64 = 42;
}
