//! simlint fixture: plain-ownership model state — `no-shared-mut-in-sim`
//! must report nothing. Idents that merely *contain* the banned names
//! (`RcConfig`, `CellIndex`, `OnceCell`) must not match. Not compiled.

pub struct RcConfig {
    pub retries: u32,
}

pub struct CellIndex(pub u64);

pub struct Model {
    queue: VecDeque<TaskId>,
    table: BTreeMap<TaskId, CellIndex>,
    config: RcConfig,
    init: OnceCell<u64>,
}

impl Model {
    pub fn advance(&mut self, id: TaskId) {
        self.queue.push_back(id);
    }
}

pub static LIMIT: u64 = 4096;

pub fn thread_local_name(worker: u64) -> String {
    format!("worker-{worker}")
}
