//! simlint fixture: trips `journal-coverage` exactly twice — one direct
//! write of journaled state outside `apply`, one unsanctioned call into
//! the replay subtree. Scanned as if it were `crates/lobster/src/db.rs`.
//! Not compiled.

pub struct LobsterDb {
    tasks: BTreeMap<TaskId, TaskRow>,
    done_order: Vec<TaskId>,
    n_tasks: u64,
}

impl LobsterDb {
    fn apply(&mut self, rec: Record) {
        match rec {
            Record::Create(row) => {
                self.tasks.insert(row.id, row);
                self.n_tasks += 1;
            }
            Record::Finish(id) => self.mark_done(id),
        }
    }

    fn mark_done(&mut self, id: TaskId) {
        self.done_order.push(id);
    }

    /// Finding 1: journaled state mutated directly — a crash between this
    /// write and the next snapshot silently diverges from replay.
    pub fn sneaky_bump(&mut self, id: TaskId) {
        self.done_order.push(id);
    }

    /// Finding 2: re-entering the replay path without logging a Record.
    pub fn sneaky_replay(&mut self, rec: Record) {
        self.apply(rec);
    }
}
