//! simlint fixture: contains a violation of every rule, each suppressed
//! by an escape hatch — the linter must report nothing.
//! Not compiled — scanned as text by the self-tests.

// simlint::allow-file(no-wall-clock): fixture exercising the file-level marker
// simlint::allow-file(no-ambient-rng): fixture exercising the file-level marker

use std::collections::HashMap; // simlint::allow(no-unordered-iteration): fixture; never iterated

pub fn now_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}

// simlint::allow(no-unordered-iteration): fixture; single-key lookup only
pub fn pick(m: &HashMap<u64, u64>) -> u64 {
    let seed = thread_rng().next_u64();
    // simlint::allow(no-panic-in-lib): fixture; key always inserted by constructor
    m.get(&seed).copied().unwrap()
}
