//! simlint fixture: trips `no-float-order` and nothing else — float
//! reductions and accumulations with no proven iteration order.
//! Not compiled.

/// `.sum()` of floats from a slice iterator: order unproven.
pub fn total_wall_time(samples: &[f64]) -> f64 {
    let total: f64 = samples.iter().map(|s| *s).sum();
    total
}

/// Turbofish names the float type outright.
pub fn total_cost(xs: &[Cost]) -> f64 {
    xs.iter().map(|c| c.dollars).sum::<f64>()
}

/// Float `+=` inside a loop over a non-range source.
pub fn weighted_mean(rows: &[Row]) -> f64 {
    let mut acc = 0.0f64;
    let mut weight = 0.0f64;
    for r in rows.iter() {
        acc += r.value * r.weight as f64;
        weight += r.weight as f64;
    }
    acc / weight
}
