//! simlint fixture: trips `no-unordered-iteration` and nothing else.
//! Not compiled — scanned as text by the self-tests.

use std::collections::HashMap;

pub fn first_key(m: &HashMap<u64, u64>) -> Option<u64> {
    m.keys().next().copied()
}
