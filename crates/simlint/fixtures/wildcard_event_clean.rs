//! simlint fixture: event dispatch that enumerates every variant —
//! `no-wildcard-event-match` must report nothing. Wildcards over
//! non-event enums stay legal. Not compiled.

pub fn dispatch(&mut self, ev: Ev) {
    match ev {
        Ev::TaskDone { id, report } => self.on_done(id, report),
        Ev::WorkerLost(worker) => self.on_lost(worker),
        Ev::Heartbeat => self.on_heartbeat(),
    }
}

pub fn phase_weight(phase: Phase) -> u32 {
    // A catch-all over a non-event enum is fine.
    match phase {
        Phase::Running => 10,
        _ => 1,
    }
}

pub fn nested(&mut self, ev: Ev) -> u32 {
    match ev {
        Ev::TaskDone { id, .. } => match self.lookup(id) {
            Some(row) => row.cores,
            None => 0,
        },
        Ev::WorkerLost(_) => 0,
        Ev::Heartbeat => 1,
    }
}
