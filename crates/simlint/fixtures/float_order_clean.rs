//! simlint fixture: float arithmetic whose evaluation order is proven or
//! attested — `no-float-order` must report nothing. Not compiled.

/// Range sources are ordered by construction: exempt without an allow.
pub fn mean_service_time(n: u64) -> f64 {
    let total: f64 = (0..n).map(|i| service_time(i)).sum();
    total / n as f64
}

/// Integer reductions are associative: never flagged.
pub fn total_events(counts: &[u64]) -> u64 {
    counts.iter().sum()
}

/// Integer accumulation in a loop over an unordered-looking source: fine.
pub fn count_ready(rows: &[Row]) -> u64 {
    let mut n = 0;
    for r in rows.iter() {
        n += r.ready as u64;
    }
    n
}

/// A float reduction over an ordered container, attested with an allow.
pub fn window_mean(window: &VecDeque<f64>) -> f64 {
    // simlint::allow(no-float-order): VecDeque iterates in insertion order
    let total: f64 = window.iter().sum();
    total / window.len() as f64
}

/// Float accumulation inside a range loop: order proven by the range.
pub fn horner(coeffs_len: usize, x: f64) -> f64 {
    let mut acc = 0.0;
    for i in 0..coeffs_len {
        acc += coeff(i) * x.powi(i as i32);
    }
    acc
}
