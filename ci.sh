#!/usr/bin/env sh
# Pre-merge gate for this workspace (see docs/determinism.md).
#
#   ./ci.sh            # full gate: fmt, clippy, simlint, tests
#   ./ci.sh --fast     # skip clippy (useful while iterating)
#
# Every step must pass; the script stops at the first failure.

set -eu

cd "$(dirname "$0")"

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all -- --check

if [ "$fast" -eq 0 ]; then
    step cargo clippy --workspace --all-targets -- -D warnings
fi

# Determinism & robustness lints (rules 1-9: wall-clock, ambient RNG,
# unordered iteration, library panics, WAL expects, journal coverage,
# float accumulation order, shared mutability, wildcard event matches).
# The JSON report is committed alongside the BENCH_*.json artifacts so
# lint drift shows up in review; the --check gate then fails on any
# finding not in simlint.baseline.
echo
echo "==> cargo run -q -p simlint -- --format json > SIMLINT_report.json"
cargo run -q -p simlint -- --format json > SIMLINT_report.json
step cargo run -q -p simlint -- --check

step cargo test --workspace -q

# Release-mode cluster-run smoke: fixed seed, failure-policy machinery
# included; writes throughput numbers to BENCH_cluster.json plus the
# ops-plane snapshot METRICS_cluster.json. Schema drift against the
# committed snapshot fails the gate; value drift prints a notice.
step cargo run -q --release -p lobster-bench --bin bench_cluster

# Render the ops dashboard straight from the committed snapshot — proves
# the HTML view needs nothing but metrics.json. The artifact is
# regenerated, not committed.
step cargo run -q --release -p lobster --bin lobster -- \
    dashboard METRICS_cluster.json --out DASHBOARD_cluster.html

# Scale-campaign sweep (2.5k -> 20k cores with fault windows). Rewrites
# BENCH_scale.json and fails if any sweep point loses more than 20% of
# the committed baseline's events/sec.
step cargo run -q --release -p lobster-bench --bin bench_scale

# Recovery bench: WAL v3 snapshot+tail vs full replay, journal bytes vs
# the v2 JSON equivalent. Rewrites BENCH_recovery.json and fails on a
# sub-10x journal shrink, a resume over 100 ms, a >20% resume-latency
# regression vs the committed baseline, or any journal-size growth.
step cargo run -q --release -p lobster-bench --bin bench_recovery

# Multi-tenant sweep (1 -> 100 masters over one shared pool). Rewrites
# BENCH_multitenant.json; fails if any contended point's Jain fairness
# drops below 0.9 or any point loses more than 20% of the committed
# baseline's events/sec.
step cargo run -q --release -p lobster-bench --bin bench_multitenant

# Crash-consistency smoke: the sampled crash-point matrix (boundary,
# in-commit-window, torn-append, and mid-compaction crashes, resume,
# convergence). The full 64-point sweep stays behind --ignored; run it:
#   cargo test --release -p lobster --test crash_matrix -- --ignored
step cargo test --release -q -p lobster --test crash_matrix

# Chaos-sweep conformance: every scenarios/*.json library file plus ten
# seeded random fault schedules, each checked against the four global
# invariants (no hang, conservation, determinism, crash/resume).
# Rewrites CONFORMANCE_chaos.json; invariant violations fail the gate,
# trace-digest drift against the committed baseline only prints a notice.
step cargo run -q --release -p lobster-bench --bin bench_chaos

echo
echo "ci.sh: all gates passed"
