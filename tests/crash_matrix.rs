//! Crash-point injection matrix: kill the master at event boundaries
//! (and mid-WAL-append, via byte truncation of the journal), restart
//! from disk, and check that the resumed run converges to the same
//! final accounting as an uninterrupted run of the same seed.
//!
//! A resumed run's *timing* legitimately diverges — the clock restarts
//! and the rng stream is re-seeded — so the invariants checked here are
//! the crash-consistency ones: every tasklet done exactly once, every
//! output byte inside exactly one merged file, nothing lost and nothing
//! duplicated.

use batchsim::availability::AvailabilityModel;
use batchsim::pool::PoolConfig;
use gridstore::dbs::{DatasetSpec, Dbs};
use lobster::config::{Backoff, JournalPolicy, LobsterConfig};
use lobster::db::LobsterDb;
use lobster::driver::{ClusterSim, RunReport, SimParams};
use lobster::fault::{Fault, FaultPlan, FaultTarget};
use lobster::merge::MergeMode;
use lobster::workflow::Workflow;
use simkit::fault::CrashPoint;
use simkit::time::{SimDuration, SimTime};
use simnet::outage::{Outage, OutageSchedule};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

const BYTES_PER_TASKLET: u64 = 12_000_000;

fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lobster-crash-matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    cleanup(&path);
    path
}

/// v3 journals are directories; clear both shapes.
fn cleanup(path: &PathBuf) {
    std::fs::remove_file(path).ok();
    std::fs::remove_dir_all(path).ok();
}

/// The single-workflow crash workload journals task state to
/// `shard-0000.wal` and merge/accounting state to `master.wal`.
fn shard_file(path: &Path) -> PathBuf {
    path.join("shard-0000.wal")
}

fn master_file(path: &Path) -> PathBuf {
    path.join("master.wal")
}

/// A small but non-trivial workload: enough tasks that crashes land in
/// every phase (dispatch, merge planning, merge execution).
fn setup(merge: MergeMode, n_files: usize) -> (LobsterConfig, SimParams, Vec<Workflow>) {
    let mut cfg = LobsterConfig::default();
    cfg.merge = merge;
    cfg.workers.target_cores = 64;
    cfg.workers.cores_per_worker = 4;
    cfg.merge_target_bytes = 200_000_000;
    cfg.seed = 42;
    // Snapshot aggressively so crash points land both before and after
    // compactions (exercising snapshot + tail replay).
    cfg.journal = JournalPolicy {
        snapshot_every_records: Some(200),
        ..JournalPolicy::default()
    };
    let mut dbs = Dbs::new();
    dbs.generate(
        "/TTJets/Spring14/AOD",
        DatasetSpec {
            n_files,
            mean_file_bytes: 500_000_000,
            events_per_lumi: 100,
            lumis_per_file: 50,
        },
        7,
    );
    let ds = dbs.query("/TTJets/Spring14/AOD").unwrap();
    let wf = Workflow::from_dataset(&cfg.workflows[0], ds);
    let params = SimParams {
        availability: AvailabilityModel::Dedicated,
        outages: OutageSchedule::none(),
        pool: PoolConfig {
            total_cores: 200,
            owner_mean: 20.0,
            reversion: 0.1,
            noise: 0.0,
            tick: SimDuration::from_mins(5),
        },
        horizon: SimDuration::from_hours(96),
        ..SimParams::default()
    };
    (cfg, params, vec![wf])
}

/// The invariants a recovered-and-finished run must satisfy against the
/// uninterrupted reference.
fn assert_converged(resumed: &RunReport, reference: &RunReport, path: &PathBuf, label: &str) {
    assert!(
        resumed.finished_at.is_some(),
        "{label}: resumed run must finish: {resumed:?}"
    );
    let merged = |r: &RunReport| -> u64 { r.merged_files.iter().map(|m| m.1).sum() };
    assert_eq!(
        merged(resumed),
        merged(reference),
        "{label}: merged bytes must match the uninterrupted run"
    );
    assert_eq!(
        resumed.dead_letters.len(),
        reference.dead_letters.len(),
        "{label}: dead-letter ledgers must agree"
    );
    // Post-hoc audit: replay the journal cold and check the final state.
    let db = LobsterDb::recover(path).unwrap();
    assert!(db.all_done(), "{label}: every tasklet accounted done");
    assert!(
        db.unmerged_outputs().is_empty(),
        "{label}: no output left outside a merged file"
    );
    assert!(
        db.open_merge_groups().is_empty(),
        "{label}: no merge group left open"
    );
    assert!(
        db.running_tasks().is_empty(),
        "{label}: no task left in flight"
    );
}

fn reference_run(
    mk: &dyn Fn() -> (LobsterConfig, SimParams, Vec<Workflow>),
    tag: &str,
) -> (RunReport, PathBuf) {
    let path = journal_path(tag);
    let (cfg, params, wfs) = mk();
    let report = ClusterSim::run_durable(cfg, params, wfs, &path).unwrap();
    assert!(report.finished_at.is_some(), "reference must finish");
    (report, path)
}

/// Crash at a sampled set of event boundaries; resume; converge.
#[test]
fn crash_at_event_boundaries_resumes_to_same_accounting() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-boundaries");
    let n = reference.events_delivered;
    assert!(n > 100, "workload too small to be interesting: {n} events");
    cleanup(&ref_path);

    for crash_after in [1, n / 4, n / 2, 3 * n / 4, n - 1] {
        let path = journal_path(&format!("crash-{crash_after}"));
        let (cfg, params, wfs) = mk();
        let crashed = ClusterSim::run_durable_until_crash(
            cfg,
            params,
            wfs,
            &path,
            CrashPoint::after_events(crash_after),
        )
        .unwrap();
        assert!(
            crashed.is_none(),
            "budget {crash_after} of {n} events must crash mid-run"
        );
        let (cfg, params, wfs) = mk();
        let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
        assert_converged(
            &resumed,
            &reference,
            &path,
            &format!("crash after {crash_after} events"),
        );
        cleanup(&path);
    }
}

/// Crash mid-WAL-append: stop at an event boundary, then tear the tail
/// of the journal by a few bytes — as if the process died inside
/// `write_all`. Recovery must drop the torn record and still converge.
#[test]
fn crash_mid_wal_append_resumes_to_same_accounting() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-torn");
    let n = reference.events_delivered;
    cleanup(&ref_path);

    // Tear the task shard and the master file in turn: either can be
    // the one the process died inside.
    for (which, torn_bytes) in [
        ("shard", 1u64),
        ("shard", 3),
        ("shard", 7),
        ("shard", 12),
        ("master", 5),
    ] {
        let path = journal_path(&format!("torn-{which}-{torn_bytes}"));
        let (cfg, params, wfs) = mk();
        let crashed = ClusterSim::run_durable_until_crash(
            cfg,
            params,
            wfs,
            &path,
            CrashPoint::after_events(n / 2),
        )
        .unwrap();
        assert!(crashed.is_none());
        let victim = match which {
            "shard" => shard_file(&path),
            _ => master_file(&path),
        };
        let len = std::fs::metadata(&victim).unwrap().len();
        assert!(len > 16 + torn_bytes, "{which} long enough to tear");
        let f = OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(len - torn_bytes).unwrap();
        drop(f);
        let (cfg, params, wfs) = mk();
        let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
        assert_converged(
            &resumed,
            &reference,
            &path,
            &format!("torn {which} append ({torn_bytes} bytes)"),
        );
        cleanup(&path);
    }
}

/// A crash budget larger than the whole run is no crash at all: the
/// durable run completes and reports exactly like an undisturbed one.
#[test]
fn crash_point_past_the_end_is_a_normal_run() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-past-end");
    cleanup(&ref_path);
    let path = journal_path("past-end");
    let (cfg, params, wfs) = mk();
    let report = ClusterSim::run_durable_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::after_events(reference.events_delivered + 1_000),
    )
    .unwrap()
    .expect("run drains before the crash budget");
    assert_eq!(report.tasks_completed, reference.tasks_completed);
    assert_eq!(report.merges_completed, reference.merges_completed);
    assert_eq!(report.finished_at, reference.finished_at);
    assert_eq!(report.events_delivered, reference.events_delivered);
    cleanup(&path);
}

/// Journaling must not perturb the simulation: an in-memory run and a
/// durable run of the same seed are byte-identical in everything the
/// report captures.
#[test]
fn durable_run_is_byte_identical_to_in_memory_run() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (cfg, params, wfs) = mk();
    let mem = ClusterSim::run(cfg, params, wfs);
    let path = journal_path("identical");
    let (cfg, params, wfs) = mk();
    let dur = ClusterSim::run_durable(cfg, params, wfs, &path).unwrap();

    assert_eq!(mem.tasks_completed, dur.tasks_completed);
    assert_eq!(mem.tasks_failed, dur.tasks_failed);
    assert_eq!(mem.evictions, dur.evictions);
    assert_eq!(mem.merges_completed, dur.merges_completed);
    assert_eq!(mem.finished_at, dur.finished_at);
    assert_eq!(mem.ended_at, dur.ended_at);
    assert_eq!(mem.events_delivered, dur.events_delivered);
    assert_eq!(
        mem.peak_concurrency.to_bits(),
        dur.peak_concurrency.to_bits()
    );
    assert_eq!(mem.merged_files, dur.merged_files);
    assert_eq!(mem.dead_letters, dur.dead_letters);
    assert_eq!(mem.analysis_done.sums(), dur.analysis_done.sums());
    assert_eq!(
        serde_json::to_string(&mem.accounting).unwrap(),
        serde_json::to_string(&dur.accounting).unwrap()
    );
    cleanup(&path);
}

/// Crash-resume under injected faults and a bounded retry budget: the
/// dead-letter ledger survives the crash and the conservation law
/// (merged units + dead units == total tasklets) holds after resume.
#[test]
fn crash_with_dead_letters_conserves_tasklets() {
    let mins = |m: u64| SimTime::ZERO + SimDuration::from_mins(m);
    let mk = || {
        // 360 files: large enough that the federation blackout exhausts
        // retry budgets (the same workload shape the driver's own
        // dead-letter test uses).
        let (mut cfg, mut params, wfs) = setup(MergeMode::Interleaved, 360);
        params.faults = FaultPlan::new(vec![Fault::new(
            FaultTarget::Federation,
            OutageSchedule::new(vec![Outage::blackout(mins(30), mins(20 * 60))]),
        )]);
        cfg.retry.max_attempts = Some(3);
        cfg.retry.requeue = Backoff::fixed(SimDuration::from_mins(10));
        (cfg, params, wfs)
    };
    let (_, _, wfs) = mk();
    let total_tasklets: u64 = wfs.iter().map(|w| w.n_tasklets()).sum();
    let (reference, ref_path) = reference_run(&mk, "ref-dead");
    assert!(!reference.dead_letters.is_empty(), "{reference:?}");
    cleanup(&ref_path);

    let path = journal_path("dead-letters");
    let (cfg, params, wfs) = mk();
    let crashed = ClusterSim::run_durable_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::after_events(reference.events_delivered / 2),
    )
    .unwrap();
    assert!(crashed.is_none(), "crash lands mid-run");
    let (cfg, params, wfs) = mk();
    let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
    assert!(resumed.finished_at.is_some(), "{resumed:?}");
    let merged_bytes: u64 = resumed.merged_files.iter().map(|m| m.1).sum();
    let dead_units: u64 = resumed.dead_letters.iter().map(|d| d.units).sum();
    assert_eq!(
        merged_bytes / BYTES_PER_TASKLET + dead_units,
        total_tasklets,
        "every tasklet is merged or accounted dead: {resumed:?}"
    );
    cleanup(&path);
}

/// A journal already holding a run refuses `durable` (fresh) opens, and
/// resume rejects a config whose workflow shape contradicts the journal.
#[test]
fn durable_and_resume_guard_their_preconditions() {
    let path = journal_path("guards");
    let mk = || setup(MergeMode::Interleaved, 10);
    let (cfg, params, wfs) = mk();
    // A 10-file run delivers well over 100 events (asserted by the
    // boundary test), so a 50-event budget always lands mid-run.
    let crashed =
        ClusterSim::run_durable_until_crash(cfg, params, wfs, &path, CrashPoint::after_events(50))
            .unwrap();
    assert!(crashed.is_none());

    let (cfg, params, wfs) = mk();
    let err = match ClusterSim::durable(cfg, params, wfs, &path) {
        Err(e) => e,
        Ok(_) => panic!("fresh open over live state must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);

    let (cfg, params, _) = mk();
    // A different dataset decomposition contradicts the journal.
    let (_, _, wfs) = setup(MergeMode::Interleaved, 12);
    let err = match ClusterSim::resume(cfg, params, wfs, &path) {
        Err(e) => e,
        Ok(_) => panic!("mismatched decomposition must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    cleanup(&path);
}

/// Corruption *before* the final frame is not a torn tail — it means the
/// fsynced history itself is damaged, and recovery must refuse to
/// silently drop acknowledged state. Flip one payload byte in an early
/// frame and in a mid-file frame; resume must fail hard with
/// `InvalidData`, never limp onward from a truncated prefix.
#[test]
fn mid_file_wal_corruption_fails_hard() {
    // Walk the v3 framing (16-byte header, then 8-byte frame headers of
    // `len: u32 LE | crc: u32 LE`) to find frame payload offsets without
    // reaching into db internals.
    fn frame_payloads(buf: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut pos = 16usize;
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let end = pos + 8 + len;
            if end > buf.len() {
                break;
            }
            out.push((pos + 8, len));
            pos = end;
        }
        out
    }

    // No snapshot compaction and two-record commit groups: the shard
    // file accumulates several frames, all of them fsynced history
    // (only a handful of db records exist by the n/2-event mark — the
    // early event stream is dominated by non-db activity).
    let mk = || {
        let (mut cfg, params, wfs) = setup(MergeMode::Interleaved, 10);
        cfg.journal = JournalPolicy {
            snapshot_every_records: None,
            group_commit_records: 2,
            ..JournalPolicy::default()
        };
        (cfg, params, wfs)
    };
    let (reference, ref_path) = reference_run(&mk, "ref-corrupt");
    let n = reference.events_delivered;
    cleanup(&ref_path);
    for which in ["first", "middle"] {
        let path = journal_path(&format!("corrupt-{which}"));
        let (cfg, params, wfs) = mk();
        let crashed = ClusterSim::run_durable_until_crash(
            cfg,
            params,
            wfs,
            &path,
            CrashPoint::after_events(n / 2),
        )
        .unwrap();
        assert!(crashed.is_none(), "budget must land mid-run");

        // Corrupt the task shard: with group commit one frame is a whole
        // batch, so even a busy file holds only a handful of frames.
        let victim = shard_file(&path);
        let mut bytes = std::fs::read(&victim).unwrap();
        let frames = frame_payloads(&bytes);
        assert!(
            frames.len() >= 3,
            "need several intact frames to corrupt mid-file, got {}",
            frames.len()
        );
        // Pick a non-final frame: the first, or the one halfway through.
        let idx = match which {
            "first" => 0,
            _ => frames.len() / 2,
        };
        assert!(idx < frames.len() - 1, "must not touch the final frame");
        let (payload_at, len) = frames[idx];
        bytes[payload_at + len / 2] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();

        let (cfg, params, wfs) = mk();
        let err = match ClusterSim::resume_run(cfg, params, wfs, &path) {
            Err(e) => e,
            Ok(_) => panic!("{which}-frame corruption must refuse to resume"),
        };
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "{which}-frame corruption: {err}"
        );
        cleanup(&path);
    }
}

/// Crash the master, resume, crash the *resumed* run, resume again: the
/// journal must stay replayable through stacked recoveries and the final
/// run must converge to the uninterrupted reference accounting.
#[test]
fn double_crash_resumes_twice_and_converges() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-double");
    let n = reference.events_delivered;
    cleanup(&ref_path);

    let path = journal_path("double-crash");
    let (cfg, params, wfs) = mk();
    let first = ClusterSim::run_durable_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::after_events(n / 3),
    )
    .unwrap();
    assert!(first.is_none(), "first crash lands mid-run");

    // The resumed run replays state, then crashes again after a modest
    // budget of *its own* events — inside the work the first crash left.
    let (cfg, params, wfs) = mk();
    let second = ClusterSim::resume_run_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::after_events(n / 4),
    )
    .unwrap();
    assert!(second.is_none(), "second crash lands mid-resume");

    let (cfg, params, wfs) = mk();
    let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
    assert_converged(&resumed, &reference, &path, "double crash");
    cleanup(&path);
}

/// Crash *inside* an open group-commit window: the records buffered
/// since the last commit die with the process, so the journal
/// legitimately lags the dead master's memory by up to one window.
/// Resume must replay the committed prefix and still converge —
/// including through a second in-window crash of the resumed run.
#[test]
fn crash_inside_commit_window_resumes_to_same_accounting() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-window");
    let n = reference.events_delivered;
    cleanup(&ref_path);

    for crash_after in [n / 4, n / 2, 3 * n / 4] {
        let path = journal_path(&format!("window-{crash_after}"));
        let (cfg, params, wfs) = mk();
        let crashed = ClusterSim::run_durable_until_crash(
            cfg,
            params,
            wfs,
            &path,
            CrashPoint::inside_commit_window(crash_after),
        )
        .unwrap();
        assert!(crashed.is_none(), "budget must land mid-run");
        let (cfg, params, wfs) = mk();
        let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
        assert_converged(
            &resumed,
            &reference,
            &path,
            &format!("in-window crash after {crash_after} events"),
        );
        cleanup(&path);
    }

    // Stacked: boundary crash, resume, in-window crash, resume again.
    let path = journal_path("window-double");
    let (cfg, params, wfs) = mk();
    let first = ClusterSim::run_durable_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::after_events(n / 3),
    )
    .unwrap();
    assert!(first.is_none());
    let (cfg, params, wfs) = mk();
    let second = ClusterSim::resume_run_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::inside_commit_window(n / 4),
    )
    .unwrap();
    assert!(second.is_none(), "second crash lands mid-resume");
    let (cfg, params, wfs) = mk();
    let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
    assert_converged(&resumed, &reference, &path, "in-window double crash");
    cleanup(&path);
}

/// Crash mid-shard-compaction: the process dies after writing the
/// compacted replacement (`.waltmp`) but before the atomic rename. The
/// stray tmp file must be ignored on replay and cleared on reopen, and
/// the resumed run must converge.
#[test]
fn crash_mid_compaction_ignores_stray_tmp() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-compaction");
    let n = reference.events_delivered;
    cleanup(&ref_path);

    let path = journal_path("compaction");
    let (cfg, params, wfs) = mk();
    let crashed = ClusterSim::run_durable_until_crash(
        cfg,
        params,
        wfs,
        &path,
        CrashPoint::after_events(n / 2),
    )
    .unwrap();
    assert!(crashed.is_none());
    // Simulate the torn compaction: a half-written replacement next to
    // the live shard file (any bytes — it was never fsync-renamed).
    let stray = path.join("shard-0000.wal.waltmp");
    std::fs::write(&stray, b"half-written compacted image").unwrap();
    let (cfg, params, wfs) = mk();
    let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
    assert_converged(&resumed, &reference, &path, "mid-compaction crash");
    assert!(!stray.exists(), "reopen clears the stray tmp file");
    cleanup(&path);
}

/// The full matrix: sweep crash points across the whole run (64 evenly
/// spaced boundaries, each with a torn-append variant). The tear lands
/// on `master.wal`: a commit writes shards first and master last, so
/// "died inside the final write of a commit" means a torn master tail —
/// tearing a *shard* after master was flushed would fabricate a
/// causality violation no real crash can produce (and which recovery
/// now rejects). Expensive — run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full sweep is release-bench territory; the smoke tests above cover the sampled matrix"]
fn full_crash_matrix() {
    let mk = || setup(MergeMode::Interleaved, 10);
    let (reference, ref_path) = reference_run(&mk, "ref-full");
    let n = reference.events_delivered;
    cleanup(&ref_path);
    let points = 64u64;
    for i in 0..points {
        let crash_after = 1 + i * (n - 2) / (points - 1);
        for torn_bytes in [0u64, 5] {
            let path = journal_path(&format!("full-{i}-{torn_bytes}"));
            let (cfg, params, wfs) = mk();
            let crashed = ClusterSim::run_durable_until_crash(
                cfg,
                params,
                wfs,
                &path,
                CrashPoint::after_events(crash_after),
            )
            .unwrap();
            assert!(crashed.is_none());
            if torn_bytes > 0 {
                let victim = master_file(&path);
                let len = std::fs::metadata(&victim).unwrap().len();
                let f = OpenOptions::new().write(true).open(&victim).unwrap();
                f.set_len(len.saturating_sub(torn_bytes).max(16)).unwrap();
            }
            let (cfg, params, wfs) = mk();
            let resumed = ClusterSim::resume_run(cfg, params, wfs, &path).unwrap();
            assert_converged(
                &resumed,
                &reference,
                &path,
                &format!("matrix point {i} (torn {torn_bytes})"),
            );
            cleanup(&path);
        }
    }
}

// ----- multi-tenant crash isolation (ISSUE 10) -----------------------------
//
// Kill one tenant's master mid-run and resume it from its own journal
// while two peers keep arbitrating over the same pool. Because every
// arbiter input is crash-invariant (static weights, journaled
// work-remaining clamped at target concurrency, allocation-charged
// usage), the peers' cap sequences and observable traces must be
// byte-identical to a run where no one crashed.

fn mt_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("lobster-crash-matrix")
        .join(format!("mt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A simulation tenant whose workload cannot finish inside the horizon:
/// demand stays clamped at `target_cores`, which is what makes the
/// arbitration stream independent of the victim's recovery details.
fn mt_sim_tenant(name: &str, weight: f64, tasklets: u64) -> tenancy::TenantSpec {
    let mut cfg = LobsterConfig::default();
    cfg.workflows = vec![lobster::config::WorkflowConfig::simulation("gen")];
    cfg.workers.target_cores = 48;
    cfg.workers.cores_per_worker = 4;
    cfg.seed = 0x717E ^ tasklets ^ (name.len() as u64);
    let wf = Workflow::simulation(&cfg.workflows[0], tasklets, 0);
    tenancy::TenantSpec {
        name: name.to_string(),
        weight,
        cfg,
        params: SimParams::default(),
        workflows: vec![wf],
    }
}

fn mt_coord(horizon: SimDuration) -> tenancy::TenancyConfig {
    tenancy::TenancyConfig {
        pool: PoolConfig {
            total_cores: 96,
            owner_mean: 12.0,
            reversion: 0.3,
            noise: 3.0,
            tick: SimDuration::from_mins(5),
        },
        round: SimDuration::from_mins(5),
        arbiter: batchsim::arbiter::ArbiterConfig::default(),
        horizon,
        seed: 0xC4A5,
    }
}

#[test]
fn multitenant_crash_leaves_peer_arbitration_unperturbed() {
    let roster = || {
        vec![
            mt_sim_tenant("victim", 1.0, 2_000_000),
            mt_sim_tenant("peer-a", 2.0, 2_000_000),
            mt_sim_tenant("peer-b", 1.0, 2_000_000),
        ]
    };
    let horizon = SimDuration::from_hours(2);

    let base_root = mt_root("baseline");
    let baseline = tenancy::MultiTenant::durable(mt_coord(horizon), roster(), &base_root)
        .unwrap()
        .run()
        .unwrap();
    assert!(baseline.crash_round.is_none());

    let crash_root = mt_root("crashed");
    let mut mt = tenancy::MultiTenant::durable(mt_coord(horizon), roster(), &crash_root).unwrap();
    mt.crash_tenant(0, 300).unwrap();
    let crashed = mt.run().unwrap();
    assert!(
        crashed.crash_round.is_some(),
        "the scheduled crash must fire inside the run"
    );

    // Peers: byte-identical caps and observable traces.
    for i in [1usize, 2] {
        let b = &baseline.tenants[i];
        let c = &crashed.tenants[i];
        assert_eq!(
            b.cap_history, c.cap_history,
            "peer {} saw different arbitration because of the crash",
            b.name
        );
        assert_eq!(
            b.trace_digest, c.trace_digest,
            "peer {} trace perturbed by the crash",
            b.name
        );
    }
    // The victim itself recovered onto a cold-auditable journal.
    let victim_path = tenancy::journal_dir(&crash_root, 0, "victim");
    // (The workload is deliberately unfinishable, so tasks may still be
    // journaled as running at the horizon — the audit is that the journal
    // recovers and the victim's workflow survived the in-window crash.)
    let db = LobsterDb::recover(&victim_path).unwrap();
    assert!(db.task_count() > 0, "victim journal lost its tasks");
    std::fs::remove_dir_all(&base_root).ok();
    std::fs::remove_dir_all(&crash_root).ok();
}

#[test]
fn multitenant_crash_victim_converges_to_no_crash_accounting() {
    let roster = || {
        vec![
            mt_sim_tenant("victim", 1.0, 600),
            mt_sim_tenant("peer-a", 1.0, 600),
        ]
    };
    let horizon = SimDuration::from_hours(48);

    let base_root = mt_root("conv-baseline");
    let baseline = tenancy::MultiTenant::durable(mt_coord(horizon), roster(), &base_root)
        .unwrap()
        .run()
        .unwrap();

    let crash_root = mt_root("conv-crashed");
    let mut mt = tenancy::MultiTenant::durable(mt_coord(horizon), roster(), &crash_root).unwrap();
    mt.crash_tenant(0, 400).unwrap();
    let crashed = mt.run().unwrap();
    assert!(crashed.crash_round.is_some(), "crash must fire mid-run");

    let b = &baseline.tenants[0];
    let c = &crashed.tenants[0];
    assert!(
        c.report.finished_at.is_some(),
        "victim must finish after resume"
    );
    assert_eq!(
        c.report.tasks_completed + c.report.dead_letters.len() as u64,
        b.report.tasks_completed + b.report.dead_letters.len() as u64,
        "victim's completed work must converge"
    );
    // Cold audit of the victim's journal: everything done exactly once.
    let victim_path = tenancy::journal_dir(&crash_root, 0, "victim");
    let db = LobsterDb::recover(&victim_path).unwrap();
    assert!(
        db.all_done(),
        "victim journal: every tasklet accounted done"
    );
    std::fs::remove_dir_all(&base_root).ok();
    std::fs::remove_dir_all(&crash_root).ok();
}
