//! Differential trace tests for the event-engine backends.
//!
//! The calendar queue (`EngineKind::Calendar`) replaced the original
//! `BinaryHeap` engine on the hot path; the heap survives as
//! `EngineKind::ReferenceHeap` precisely so this file can pin the two
//! against each other. Each test runs the *same* seeded cluster campaign
//! on both backends and demands byte-identical serialised traces plus
//! identical run reports. Any divergence — a different tie-break at equal
//! timestamps, a dropped cancellation, a cursor bug around bucket or
//! round boundaries — shows up as a digest mismatch naming the exact
//! (seed, faults, foremen) cell that broke.

use batchsim::availability::AvailabilityModel;
use batchsim::pool::PoolConfig;
use lobster::config::{LobsterConfig, WorkflowConfig};
use lobster::driver::{ClusterSim, SimParams};
use lobster::fault::{Fault, FaultPlan, FaultTarget};
use lobster::monitor::Accounting;
use lobster::workflow::Workflow;
use serde::Serialize;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::Trace;
use simkit::EngineKind;
use simnet::outage::{Outage, OutageSchedule};

/// Everything observable about a run, serialised through `simkit::trace`
/// exactly like the determinism integration test does.
#[derive(Serialize)]
struct RunTraceRecord {
    tasks_completed: u64,
    tasks_failed: u64,
    evictions: u64,
    merges_completed: u64,
    final_task_size: u32,
    peak_concurrency: f64,
    finished_at: Option<SimTime>,
    accounting: Accounting,
    merged_files: Vec<(String, u64)>,
    dashboard: Vec<(String, f64)>,
    concurrency: Vec<f64>,
    completions: Vec<f64>,
    failures: Vec<f64>,
    efficiency: Vec<f64>,
}

/// FNV-1a over the serialised trace bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Key report fields compared directly (on top of the byte comparison) so
/// a failure names the first field that diverged.
#[derive(Debug, PartialEq)]
struct ReportFacts {
    tasks_completed: u64,
    tasks_failed: u64,
    evictions: u64,
    merges_completed: u64,
    finished_at: Option<SimTime>,
    events_delivered: u64,
}

/// Run one small seeded campaign on the requested engine backend and
/// return the serialised trace bytes plus the comparable report facts.
fn campaign(seed: u64, faults: bool, foremen: u32, engine: EngineKind) -> (Vec<u8>, ReportFacts) {
    let mut cfg = LobsterConfig::default();
    cfg.workers.target_cores = 32;
    cfg.workers.cores_per_worker = 4;
    cfg.infra.n_foremen = foremen;
    cfg.seed = seed;
    cfg.workflows = vec![WorkflowConfig::simulation("diff")];
    let wf = Workflow::simulation(&cfg.workflows[0], 48, 2_000_000);

    let mut params = SimParams {
        horizon: SimDuration::from_hours(200),
        engine,
        ..SimParams::default()
    };
    if faults {
        // Stochastic evictions, owner pressure, and a squid blackout
        // window: every cancellation path and retry timer gets exercised,
        // and every random draw must come from the seeded stream.
        params.availability = AvailabilityModel::Exponential {
            mean: SimDuration::from_hours(4),
        };
        params.pool = PoolConfig {
            total_cores: 64,
            owner_mean: 5.0,
            reversion: 0.1,
            noise: 0.25,
            tick: SimDuration::from_mins(5),
        };
        params.faults = FaultPlan::new(vec![Fault::new(
            FaultTarget::Squid { index: 0 },
            OutageSchedule::new(vec![Outage::blackout(
                SimTime::ZERO + SimDuration::from_mins(30),
                SimTime::ZERO + SimDuration::from_mins(90),
            )]),
        )]);
    } else {
        params.availability = AvailabilityModel::Dedicated;
        params.pool = PoolConfig {
            total_cores: 64,
            owner_mean: 0.0,
            reversion: 0.1,
            noise: 0.0,
            tick: SimDuration::from_mins(5),
        };
    }

    let report = ClusterSim::run(cfg, params, vec![wf]);
    let facts = ReportFacts {
        tasks_completed: report.tasks_completed,
        tasks_failed: report.tasks_failed,
        evictions: report.evictions,
        merges_completed: report.merges_completed,
        finished_at: report.finished_at,
        events_delivered: report.events_delivered,
    };
    let record = RunTraceRecord {
        tasks_completed: report.tasks_completed,
        tasks_failed: report.tasks_failed,
        evictions: report.evictions,
        merges_completed: report.merges_completed,
        final_task_size: report.final_task_size,
        peak_concurrency: report.peak_concurrency,
        finished_at: report.finished_at,
        accounting: report.accounting.clone(),
        merged_files: report.merged_files.clone(),
        dashboard: report.dashboard.clone(),
        concurrency: report.timeline.concurrency(),
        completions: report.timeline.completions(),
        failures: report.timeline.failures(),
        efficiency: report.timeline.efficiency(),
    };
    let mut trace = Trace::new();
    trace.push(report.ended_at, record);
    let mut buf = Vec::new();
    trace
        .write_jsonl(&mut buf)
        .expect("writing to a Vec cannot fail");
    (buf, facts)
}

/// Compare one (seed, faults, foremen) cell across both backends.
fn assert_cell_identical(seed: u64, faults: bool, foremen: u32) {
    let (bytes_cal, facts_cal) = campaign(seed, faults, foremen, EngineKind::Calendar);
    let (bytes_heap, facts_heap) = campaign(seed, faults, foremen, EngineKind::ReferenceHeap);
    assert!(!bytes_cal.is_empty());
    assert!(
        facts_cal.tasks_completed > 0,
        "campaign (seed={seed}) did no work — the diff would be vacuous"
    );
    assert_eq!(
        facts_cal, facts_heap,
        "run reports diverged (seed={seed}, faults={faults}, foremen={foremen})"
    );
    assert_eq!(
        fnv1a(&bytes_cal),
        fnv1a(&bytes_heap),
        "trace digests diverged (seed={seed}, faults={faults}, foremen={foremen})"
    );
    assert_eq!(
        bytes_cal, bytes_heap,
        "traces not byte-identical (seed={seed}, faults={faults}, foremen={foremen})"
    );
}

const SEEDS: [u64; 8] = [1, 7, 42, 1337, 4242, 90210, 271828, 3141592];

/// Fault-free campaigns: the pure dispatch/merge event flow, across the
/// full seed set and all three foreman fan-outs.
#[test]
fn calendar_matches_heap_without_faults() {
    for &seed in &SEEDS {
        for foremen in [1u32, 4, 16] {
            assert_cell_identical(seed, false, foremen);
        }
    }
}

/// Faulted campaigns: evictions cancel in-flight timers, the squid
/// blackout trips retry/backoff scheduling, owner demand churns the pool.
/// This is where a tombstone or cancellation bug in either backend would
/// surface as divergent event order.
#[test]
fn calendar_matches_heap_with_faults() {
    for &seed in &SEEDS {
        for foremen in [1u32, 4, 16] {
            assert_cell_identical(seed, true, foremen);
        }
    }
}

/// The production default is the calendar queue; the differential tests
/// above would silently compare heap-vs-heap if the default regressed.
#[test]
fn default_engine_is_calendar() {
    assert_eq!(SimParams::default().engine, EngineKind::Calendar);
    assert_ne!(EngineKind::Calendar, EngineKind::ReferenceHeap);
}
