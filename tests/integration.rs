//! Cross-crate integration tests: the full Lobster pipeline exercised
//! end-to-end in both worlds — the real threaded Work Queue path and the
//! cluster-scale discrete-event path — plus consistency checks between
//! the analytical models and the simulated system.

use batchsim::availability::{AvailabilityModel, EvictionScenario};
use batchsim::pool::PoolConfig;
use gridstore::dbs::{DatasetSpec, Dbs};
use gridstore::hdfs::Hdfs;
use gridstore::mapreduce::MapReduce;
use lobster::config::{LobsterConfig, WorkflowConfig};
use lobster::db::LobsterDb;
use lobster::driver::{ClusterSim, SimParams};
use lobster::local::{LocalConfig, LocalLobster, TaskletFn};
use lobster::merge::{merge_in_hadoop, MergeMode, MergePlanner};
use lobster::monitor::Accounting;
use lobster::tasksize::{simulate, TaskSizeConfig};
use lobster::workflow::Workflow;
use serde::Serialize;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::Trace;
use simnet::outage::OutageSchedule;
use std::sync::Arc;
use std::time::Duration;
use wqueue::task::TaskId;

fn small_dataset(seed: u64) -> gridstore::dbs::Dataset {
    let mut dbs = Dbs::new();
    dbs.generate(
        "/IT/Test/AOD",
        DatasetSpec {
            n_files: 40,
            mean_file_bytes: 400_000_000,
            events_per_lumi: 100,
            lumis_per_file: 50,
        },
        seed,
    );
    dbs.query("/IT/Test/AOD").unwrap().clone()
}

/// Real path: decomposition → threaded Work Queue → HDFS → Map-Reduce
/// merge, with a worker evicted mid-run.
#[test]
fn real_pipeline_with_eviction_survives() {
    let work: TaskletFn = Arc::new(|t, ctx| {
        if ctx.is_cancelled() {
            return Vec::new();
        }
        vec![(t % 256) as u8; 200]
    });
    let mut lob = LocalLobster::new(LocalConfig {
        workers: 3,
        cores_per_worker: 2,
        foremen: 1,
        tasklets_per_task: 5,
        merge_target_bytes: 4_000,
        timeout: Duration::from_secs(60),
    });
    // Kick one worker out from under the run shortly after it starts.
    let master = lob.master_mut();
    let victim = 0u64; // first attached worker id
    std::thread::sleep(Duration::from_millis(10));
    master.evict_worker(victim);

    let summary = lob.run_workflow("evicted-run", 50, work);
    assert_eq!(summary.tasks_completed, 10, "50 tasklets / 5 per task");
    assert_eq!(summary.tasks_failed, 0, "evicted attempts are retried");
    assert_eq!(summary.output_bytes, 50 * 200);
    assert!(!summary.merged.is_empty());
    let merged_total: u64 = summary.merged.iter().map(|m| m.1).sum();
    assert_eq!(merged_total, 50 * 200, "every byte lands in a merged file");
    lob.shutdown();
}

/// Sim path: dataset → tasklets → cluster driver → merged files, with
/// byte-level conservation end to end.
#[test]
fn sim_pipeline_conserves_output_bytes() {
    let mut cfg = LobsterConfig::default();
    cfg.workers.target_cores = 64;
    cfg.workers.cores_per_worker = 4;
    cfg.merge_target_bytes = 150_000_000;
    cfg.seed = 77;
    let ds = small_dataset(1);
    let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
    let expected_outputs = wf.n_tasklets() * cfg.workflows[0].output_bytes_per_tasklet;
    let params = SimParams {
        availability: AvailabilityModel::Exponential {
            mean: SimDuration::from_hours(6),
        },
        outages: OutageSchedule::none(),
        pool: PoolConfig {
            total_cores: 128,
            owner_mean: 10.0,
            reversion: 0.1,
            noise: 0.0,
            tick: SimDuration::from_mins(5),
        },
        horizon: SimDuration::from_hours(200),
        ..SimParams::default()
    };
    let report = ClusterSim::run(cfg, params, vec![wf]);
    assert!(report.finished_at.is_some());
    let merged: u64 = report.merged_files.iter().map(|m| m.1).sum();
    assert_eq!(
        merged, expected_outputs,
        "no output bytes lost or duplicated"
    );
}

/// Determinism end to end: two runs with the same seed and configuration
/// must serialise to byte-identical traces. This is stronger than the
/// driver's own `finished_at` check — it covers the accounting ledger,
/// the binned time evolution, the merged-file manifest, and the dashboard,
/// so any hidden source of nondeterminism (wall-clock reads, ambient RNG,
/// hash-order iteration) shows up as a digest mismatch.
#[test]
fn same_seed_runs_serialise_to_identical_traces() {
    /// Everything observable about a run that is cheap to serialise.
    #[derive(Serialize)]
    struct RunTraceRecord {
        tasks_completed: u64,
        tasks_failed: u64,
        evictions: u64,
        merges_completed: u64,
        final_task_size: u32,
        peak_concurrency: f64,
        finished_at: Option<SimTime>,
        accounting: Accounting,
        merged_files: Vec<(String, u64)>,
        dashboard: Vec<(String, f64)>,
        concurrency: Vec<f64>,
        completions: Vec<f64>,
        failures: Vec<f64>,
        efficiency: Vec<f64>,
    }

    /// FNV-1a over the serialised trace bytes.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    let run_once = || {
        let mut cfg = LobsterConfig::default();
        cfg.workers.target_cores = 64;
        cfg.workers.cores_per_worker = 4;
        cfg.seed = 4242;
        let ds = small_dataset(11);
        let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
        let params = SimParams {
            // Stochastic evictions and pool noise on purpose: every random
            // draw must come from the seeded stream.
            availability: AvailabilityModel::Exponential {
                mean: SimDuration::from_hours(8),
            },
            outages: OutageSchedule::none(),
            pool: PoolConfig {
                total_cores: 128,
                owner_mean: 5.0,
                reversion: 0.1,
                noise: 0.25,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(250),
            ..SimParams::default()
        };
        let report = ClusterSim::run(cfg, params, vec![wf]);
        let record = RunTraceRecord {
            tasks_completed: report.tasks_completed,
            tasks_failed: report.tasks_failed,
            evictions: report.evictions,
            merges_completed: report.merges_completed,
            final_task_size: report.final_task_size,
            peak_concurrency: report.peak_concurrency,
            finished_at: report.finished_at,
            accounting: report.accounting.clone(),
            merged_files: report.merged_files.clone(),
            dashboard: report.dashboard.clone(),
            concurrency: report.timeline.concurrency(),
            completions: report.timeline.completions(),
            failures: report.timeline.failures(),
            efficiency: report.timeline.efficiency(),
        };
        let mut trace = Trace::new();
        trace.push(report.ended_at, record);
        let mut buf = Vec::new();
        trace
            .write_jsonl(&mut buf)
            .expect("writing to a Vec cannot fail");
        let digest = fnv1a(&buf);
        (buf, digest)
    };

    let (bytes_a, digest_a) = run_once();
    let (bytes_b, digest_b) = run_once();
    assert!(!bytes_a.is_empty());
    assert_eq!(
        digest_a, digest_b,
        "trace digests diverged between same-seed runs"
    );
    assert_eq!(bytes_a, bytes_b, "serialised traces are not byte-identical");
}

/// The driver's measured efficiency must agree with the §4.1 analytical
/// model's ballpark for the same task length under no eviction: the model
/// predicts cpu/(cpu+overhead), and the driver's healthy-run CPU fraction
/// (excluding I/O saturation) should be in the same band.
#[test]
fn driver_and_tasksize_model_agree_on_overhead_economics() {
    // Model: 6-tasklet tasks, no eviction → efficiency = 60/(60+20) = 0.75.
    let model = simulate(
        &TaskSizeConfig {
            total_tasklets: 3_000,
            workers: 100,
            ..TaskSizeConfig::default()
        },
        &EvictionScenario::None,
        6,
        9,
    );
    assert!((model.efficiency - 0.75).abs() < 0.03);

    // Driver with matching per-task overhead (20 min sandbox), ample WAN
    // bandwidth, and a fat squid (so the cold fill — which the analytical
    // model books as *per-worker*, not per-task — is negligible): the CPU
    // fraction of task time should approach the same ceiling.
    let mut cfg = LobsterConfig::default();
    cfg.workers.target_cores = 64;
    cfg.workers.cores_per_worker = 4;
    cfg.infra.wan_gbits = 100.0; // no I/O throttling
    cfg.seed = 5;
    let ds = small_dataset(2);
    let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
    let params = SimParams {
        availability: AvailabilityModel::Dedicated,
        outages: OutageSchedule::none(),
        pool: PoolConfig {
            total_cores: 128,
            owner_mean: 0.0,
            reversion: 0.1,
            noise: 0.0,
            tick: SimDuration::from_mins(5),
        },
        horizon: SimDuration::from_hours(400),
        sandbox_service: SimDuration::from_mins(20),
        foreman_capacity: 500,
        squid: cvmfssim::squid::SquidConfig {
            bandwidth: simnet::units::gbit_per_s(100.0),
            per_client_cap: 500e6,
            timeout: SimDuration::from_hours(10),
        },
        ..SimParams::default()
    };
    let report = ClusterSim::run(cfg, params, vec![wf]);
    assert!(report.finished_at.is_some());
    let acc = &report.accounting;
    let cpu_frac = acc.cpu / acc.total();
    assert!(
        (cpu_frac - model.efficiency).abs() < 0.10,
        "driver cpu fraction {cpu_frac:.3} vs model {:.3}",
        model.efficiency
    );
}

/// Config round-trips through JSON and drives a run identically.
#[test]
fn config_json_roundtrip_drives_identical_run() {
    let mut cfg = LobsterConfig::default();
    cfg.workers.target_cores = 32;
    cfg.workers.cores_per_worker = 4;
    cfg.merge = MergeMode::Hadoop;
    cfg.seed = 123;
    let cfg2 = LobsterConfig::from_json(&cfg.to_json()).expect("round-trips");

    let run = |cfg: LobsterConfig| {
        let ds = small_dataset(3);
        let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
        let params = SimParams {
            availability: AvailabilityModel::notre_dame(),
            pool: PoolConfig {
                total_cores: 64,
                owner_mean: 0.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(300),
            ..SimParams::default()
        };
        ClusterSim::run(cfg, params, vec![wf])
    };
    let a = run(cfg);
    let b = run(cfg2);
    assert_eq!(a.tasks_completed, b.tasks_completed);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.evictions, b.evictions);
}

/// The Lobster DB journal written during a (simulated) crash replays to
/// the same bookkeeping state, and Map-Reduce merging of the recovered
/// outputs produces complete files.
#[test]
fn db_recovery_then_real_merge() {
    let dir = std::env::temp_dir().join("lobster-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("journal-{}.wal", std::process::id()));
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&path).ok();

    // Phase 1: process half the workflow, then "crash".
    {
        let mut db = LobsterDb::open(&path).unwrap();
        db.register_workflow("wf", 40);
        for _ in 0..4 {
            let t = db.create_task("wf", 5).unwrap();
            db.mark_running(t).unwrap();
            db.mark_done(t, 1_000).unwrap();
        }
    }
    // Phase 2: recover, finish, merge for real.
    let hdfs = Hdfs::new(2, 1);
    {
        let mut db = LobsterDb::open(&path).unwrap();
        assert_eq!(db.done_tasklets("wf"), 20);
        while let Some(t) = db.create_task("wf", 5) {
            db.mark_running(t).unwrap();
            db.mark_done(t, 1_000).unwrap();
        }
        assert!(db.all_done());
        let outputs: Vec<(TaskId, u64)> = db.unmerged_outputs();
        assert_eq!(outputs.len(), 8);
        for (id, bytes) in &outputs {
            hdfs.put_bytes(&format!("/out_{}.root", id.0), vec![1u8; *bytes as usize]);
        }
        let planner = MergePlanner::new(4_000);
        let groups = planner.plan_full(&outputs);
        let named: Vec<(String, Vec<String>)> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                (
                    format!("/merged_{gi}.root"),
                    g.inputs
                        .iter()
                        .map(|(id, _)| format!("/out_{}.root", id.0))
                        .collect(),
                )
            })
            .collect();
        let merged = merge_in_hadoop(&hdfs, &MapReduce::new(4), &named);
        assert_eq!(merged.len(), 2, "8 kB of outputs at 4 kB targets");
        let total: u64 = merged.iter().map(|m| hdfs.stat(m).unwrap().size).sum();
        assert_eq!(total, 8_000);
    }
    std::fs::remove_dir_all(&path).ok();
}

/// A simulation-kind workflow and a data-processing workflow run in the
/// same Lobster instance, sharing the fleet.
#[test]
fn mixed_workflows_share_the_fleet() {
    let mut cfg = LobsterConfig::default();
    cfg.workers.target_cores = 64;
    cfg.workers.cores_per_worker = 4;
    cfg.seed = 55;
    cfg.workflows = vec![
        WorkflowConfig::analysis("ttbar", "/IT/Test/AOD"),
        WorkflowConfig::simulation("gen"),
    ];
    let ds = small_dataset(4);
    let wfs = vec![
        Workflow::from_dataset(&cfg.workflows[0], &ds),
        Workflow::simulation(&cfg.workflows[1], 200, 5_000_000),
    ];
    let params = SimParams {
        availability: AvailabilityModel::Dedicated,
        pool: PoolConfig {
            total_cores: 128,
            owner_mean: 0.0,
            reversion: 0.1,
            noise: 0.0,
            tick: SimDuration::from_mins(5),
        },
        horizon: SimDuration::from_hours(400),
        ..SimParams::default()
    };
    let report = ClusterSim::run(cfg, params, wfs);
    assert!(report.finished_at.is_some(), "both workflows complete");
    assert!(report.tasks_completed > 0);
}

/// The §5 troubleshooting loop, end to end: an undersized squid tier
/// makes the advisor flag `AddSquidsOrShareCaches`; applying that advice
/// (more proxies) removes the diagnosis and improves the makespan.
#[test]
fn advisor_remediation_loop() {
    use cvmfssim::squid::SquidConfig;
    use lobster::monitor::Advice;

    let run = |n_squids: u32| {
        let mut cfg = LobsterConfig::default();
        cfg.workers.target_cores = 256;
        cfg.workers.cores_per_worker = 8;
        cfg.infra.n_squids = n_squids;
        cfg.infra.wan_gbits = 100.0;
        cfg.seed = 66;
        // ~8 rounds of tasks per slot: cold fills dominate the mean setup
        // only when the proxy tier is undersized.
        let mut dbs = Dbs::new();
        dbs.generate(
            "/IT/Advisor/AOD",
            DatasetSpec {
                n_files: 6_144,
                mean_file_bytes: 100_000_000,
                events_per_lumi: 100,
                lumis_per_file: 50,
            },
            9,
        );
        let ds = dbs.query("/IT/Advisor/AOD").unwrap().clone();
        let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
        let params = SimParams {
            availability: AvailabilityModel::Dedicated,
            outages: OutageSchedule::none(),
            pool: PoolConfig {
                total_cores: 512,
                owner_mean: 0.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(300),
            // Starved proxies: one 25 Mbit/s squid shares ~0.1 MB/s per
            // cold fill (≈4 h setups); with eight proxies each fill runs
            // at the per-client cap and the hot majority pulls the mean
            // setup well under the advisor threshold.
            squid: SquidConfig {
                bandwidth: simnet::units::mbit_per_s(25.0),
                per_client_cap: 1.25e6,
                timeout: SimDuration::from_hours(20),
            },
            ..SimParams::default()
        };
        ClusterSim::run(cfg, params, vec![wf])
    };

    let sick = run(1);
    assert!(
        sick.advice.contains(&Advice::AddSquidsOrShareCaches),
        "one starved squid should trip the setup-time rule: {:?}",
        sick.advice
    );
    let healthy = run(8);
    assert!(
        !healthy.advice.contains(&Advice::AddSquidsOrShareCaches),
        "8 proxies should clear the diagnosis: {:?}",
        healthy.advice
    );
    assert!(
        healthy.finished_at.unwrap() < sick.finished_at.unwrap(),
        "remediation must shorten the run"
    );
    // The per-segment histograms show where the time went.
    let sick_setup = sick
        .segment_histograms
        .summary()
        .into_iter()
        .find(|r| r.0 == "env setup")
        .unwrap();
    let healthy_setup = healthy
        .segment_histograms
        .summary()
        .into_iter()
        .find(|r| r.0 == "env setup")
        .unwrap();
    // The sick run's cold fills (~4 h) overflow the 0–240 min histogram
    // range; the healthy run's stay inside it.
    assert!(
        sick_setup.2 > 0,
        "starved squid should push setups past the histogram range"
    );
    assert_eq!(healthy_setup.2, 0, "healthy setups stay in range");
    assert!(healthy_setup.1 < 240.0);
}

/// S4 determinism gate (ops plane): two runs with the same seed must
/// lower to byte-identical `metrics.json` snapshots. This sits alongside
/// the trace-digest check above — the snapshot covers the registry
/// exports, the Figure 8/10/11 panels, the advisor signals, and the
/// dead-letter ledger, so it catches nondeterminism in any of them.
#[test]
fn same_seed_runs_emit_byte_identical_metrics_snapshots() {
    let run_once = || {
        let mut cfg = LobsterConfig::default();
        cfg.workers.target_cores = 64;
        cfg.workers.cores_per_worker = 4;
        cfg.seed = 4242;
        let ds = small_dataset(11);
        let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
        let params = SimParams {
            // Same stochastic regime as the trace test: every draw must
            // come from the seeded stream for the bytes to agree.
            availability: AvailabilityModel::Exponential {
                mean: SimDuration::from_hours(8),
            },
            outages: OutageSchedule::none(),
            pool: PoolConfig {
                total_cores: 128,
                owner_mean: 5.0,
                reversion: 0.1,
                noise: 0.25,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(250),
            ..SimParams::default()
        };
        let report = ClusterSim::run(cfg.clone(), params.clone(), vec![wf]);
        lobster::ops::snapshot_from_run("integration", &cfg, &params, &report).to_json()
    };
    let a = run_once();
    let b = run_once();
    assert!(!a.is_empty());
    let parsed = opsplane::MetricsSnapshot::from_json(&a).expect("snapshot parses");
    parsed.validate().expect("snapshot is schema-valid");
    assert_eq!(
        a, b,
        "metrics.json is not byte-identical across same-seed runs"
    );
}

/// Ops-plane control surface: pause a durable run mid-flight (the
/// controller requests a checkpoint), then resume from the journal and
/// converge to the same final accounting as an uninterrupted run.
#[test]
fn ops_pause_checkpoint_resume_converges() {
    use lobster::driver::{OpsOutcome, OpsRequest};

    let dir = std::env::temp_dir().join("lobster-ops-pause");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("pause-{}.wal", std::process::id()));
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&path).ok();

    let mk = || {
        let mut cfg = LobsterConfig::default();
        cfg.workers.target_cores = 64;
        cfg.workers.cores_per_worker = 4;
        cfg.seed = 99;
        let ds = small_dataset(5);
        let wf = Workflow::from_dataset(&cfg.workflows[0], &ds);
        let params = SimParams {
            availability: AvailabilityModel::Dedicated,
            outages: OutageSchedule::none(),
            pool: PoolConfig {
                total_cores: 128,
                owner_mean: 10.0,
                reversion: 0.1,
                noise: 0.0,
                tick: SimDuration::from_mins(5),
            },
            horizon: SimDuration::from_hours(200),
            ..SimParams::default()
        };
        (cfg, params, vec![wf])
    };

    // Uninterrupted reference.
    let (cfg, params, wfs) = mk();
    let reference = ClusterSim::run(cfg, params, wfs);
    assert!(reference.finished_at.is_some(), "reference must finish");
    // Size the poll window so the third sample lands ~30% into the run.
    let poll_every = (reference.events_delivered / 10).max(1);

    let mut polls = 0u32;
    let (cfg, params, wfs) = mk();
    let outcome = ClusterSim::run_durable_with_ops(cfg, params, wfs, &path, poll_every, |status| {
        polls += 1;
        assert!(status.events_delivered > 0, "status carries progress");
        if polls == 3 {
            OpsRequest::Pause
        } else {
            OpsRequest::Continue
        }
    })
    .unwrap();
    let status = match outcome {
        OpsOutcome::Paused(s) => s,
        OpsOutcome::Completed(_) => panic!("run completed before the pause request"),
    };
    assert_eq!(polls, 3, "controller stops being polled after the pause");
    assert!(
        status.live_tasks > 0 || status.counters.tasks_completed > 0,
        "pause landed mid-run: {status:?}"
    );

    // Resume through the ops plane, never pausing again.
    let (cfg, params, wfs) = mk();
    let resumed = match ClusterSim::resume_run_with_ops(cfg, params, wfs, &path, 100_000, |_| {
        OpsRequest::Continue
    })
    .unwrap()
    {
        OpsOutcome::Completed(report) => *report,
        OpsOutcome::Paused(s) => panic!("resume paused without being asked: {s:?}"),
    };
    assert!(resumed.finished_at.is_some(), "resumed run must finish");
    let merged = |r: &lobster::RunReport| -> u64 { r.merged_files.iter().map(|m| m.1).sum() };
    assert_eq!(
        merged(&resumed),
        merged(&reference),
        "pause/resume must conserve merged output bytes"
    );
    assert_eq!(
        resumed.dead_letters.len(),
        reference.dead_letters.len(),
        "dead-letter ledgers must agree"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&path).ok();
}
