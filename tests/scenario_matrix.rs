//! Scenario conformance matrix: every shipped scenario file under
//! `scenarios/` must parse, validate, compile, and pass all four global
//! invariants (no hang, accounting conservation, trace determinism,
//! crash/resume convergence) — plus a sampled pair of randomized chaos
//! seeds, so the generator itself stays honest in tier-1. The full chaos
//! sweep runs in release via `bench_chaos` (see `ci.sh`).

use scenario::chaos::chaos_scenario;
use scenario::runner::ScenarioRunner;
use scenario::spec::{Scenario, ScenarioError, ScenarioTenant};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn library() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 7,
        "scenario library holds at least the seven shipped scenarios, found {}",
        files.len()
    );
    files
}

/// Every library file parses, validates, and its name matches the file
/// stem — cheap schema conformance before the expensive runs.
#[test]
fn library_parses_and_validates() {
    for path in library() {
        let sc = Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(
            sc.name,
            stem,
            "{}: name must match file stem",
            path.display()
        );
        assert!(
            !sc.description.is_empty(),
            "{}: empty description",
            path.display()
        );
    }
}

/// The four invariants, on every shipped scenario — and every run must
/// also lower into a schema-valid ops-plane metrics snapshot. Scenarios
/// that declare a tenant roster go through the coordinated multi-tenant
/// gate instead (same four invariants over N masters and one pool).
#[test]
fn library_scenarios_conform() {
    let runner = ScenarioRunner::new("matrix").unwrap();
    for path in library() {
        let sc = Scenario::load(&path).unwrap();
        if !sc.tenants.is_empty() {
            let report = runner
                .multi_conformance(&sc)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(
                report.tenants.len(),
                sc.tenants.len(),
                "{}: one outcome per declared tenant",
                path.display()
            );
            assert!(
                report.jain_fairness > 0.0 && report.jain_fairness <= 1.0 + 1e-12,
                "{}: jain index {} out of range",
                path.display(),
                report.jain_fairness
            );
            continue;
        }
        let (report, snapshot) = runner
            .conformance_with_snapshot(&sc)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            report.done_tasklets + report.dead_tasklets,
            report.total_tasklets,
            "{}: conservation must hold in the report too",
            path.display()
        );
        assert!(
            report.finished_at_us < report.horizon_us,
            "{}: drained strictly before the horizon",
            path.display()
        );
        snapshot
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid metrics snapshot: {e}", path.display()));
        assert_eq!(snapshot.run.name, sc.name, "{}", path.display());
        assert_eq!(snapshot.run.seed, sc.seed, "{}", path.display());
        assert_eq!(
            snapshot.counter("tasks_completed"),
            Some(report.tasks_completed),
            "{}: snapshot counters mirror the conformance report",
            path.display()
        );
        // The snapshot must round-trip through its canonical JSON bytes.
        let json = snapshot.to_json();
        let back = opsplane::MetricsSnapshot::from_json(&json)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(back.to_json(), json, "{}", path.display());
    }
}

/// A sampled pair of chaos seeds: the generator must emit valid scenarios
/// that pass the same four invariants. The release sweep covers more.
#[test]
fn sampled_chaos_seeds_conform() {
    let runner = ScenarioRunner::new("chaos-sample").unwrap();
    for seed in [3, 11] {
        let sc = chaos_scenario(seed);
        sc.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        runner
            .conformance(&sc)
            .unwrap_or_else(|e| panic!("chaos seed {seed}: {e}"));
    }
}

/// Chaos generation is a pure function of the seed.
#[test]
fn chaos_scenarios_are_reproducible() {
    let a = chaos_scenario(99);
    let b = chaos_scenario(99);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed, same scenario"
    );
    let c = chaos_scenario(100);
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&c).unwrap(),
        "different seeds diverge"
    );
}

/// Validation rejects the failure modes the typed errors exist for.
#[test]
fn validation_rejects_bad_scenarios() {
    let base = chaos_scenario(7);

    let mut sc = base.clone();
    sc.workloads.clear();
    assert!(matches!(sc.validate(), Err(ScenarioError::Invalid(_))));

    let mut sc = base.clone();
    sc.faults = vec![scenario::spec::FaultSpec {
        target: lobster::fault::FaultTarget::Squid {
            index: sc.infra.n_squids as usize,
        },
        windows: vec![scenario::spec::WindowSpec {
            start_mins: 10,
            end_mins: 20,
            capacity_factor: 0.0,
            failure_prob: 1.0,
        }],
    }];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::Fault(_))),
        "squid index past the deployed set is a typed fault error"
    );

    let mut sc = base.clone();
    sc.faults = vec![scenario::spec::FaultSpec {
        target: lobster::fault::FaultTarget::Chirp,
        windows: vec![scenario::spec::WindowSpec {
            start_mins: 20,
            end_mins: 20,
            capacity_factor: 0.0,
            failure_prob: 1.0,
        }],
    }];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::Fault(_))),
        "zero-length fault window is rejected"
    );

    let mut sc = base.clone();
    sc.wan_outages = vec![
        scenario::spec::WindowSpec {
            start_mins: 10,
            end_mins: 40,
            capacity_factor: 0.0,
            failure_prob: 1.0,
        },
        scenario::spec::WindowSpec {
            start_mins: 30,
            end_mins: 50,
            capacity_factor: 0.0,
            failure_prob: 1.0,
        },
    ];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::WanOutage(_))),
        "overlapping wan outage windows are rejected"
    );

    let mut sc = base.clone();
    sc.faults = vec![scenario::spec::FaultSpec {
        target: lobster::fault::FaultTarget::Federation,
        windows: vec![scenario::spec::WindowSpec {
            start_mins: 10,
            end_mins: 60,
            capacity_factor: 1.5,
            failure_prob: 0.5,
        }],
    }];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::Fault(_))),
        "capacity factor above 1 is rejected"
    );

    let tenant = |name: &str, weight: f64| ScenarioTenant {
        name: name.to_string(),
        weight,
        seed: 1,
    };

    let mut sc = base.clone();
    sc.tenants = vec![tenant("alice", 1.0), tenant("alice", 2.0)];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::Invalid(_))),
        "duplicate tenant names are rejected"
    );

    let mut sc = base.clone();
    sc.tenants = vec![tenant("no/slashes", 1.0)];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::Invalid(_))),
        "tenant names outside [A-Za-z0-9_-]+ are rejected"
    );

    let mut sc = base;
    sc.tenants = vec![tenant("alice", 0.0)];
    assert!(
        matches!(sc.validate(), Err(ScenarioError::Invalid(_))),
        "non-positive tenant weights are rejected"
    );
}
