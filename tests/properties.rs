//! Property-based tests (proptest) on the core data structures and
//! invariants that the whole reproduction leans on.

use lobster::db::LobsterDb;
use lobster::merge::MergePlanner;
use proptest::prelude::*;
use simkit::queue::Server;
use simkit::rng::SimRng;
use simkit::stats::{binomial_ci, Histogram, Summary};
use simkit::time::{SimDuration, SimTime};
use simnet::link::FairLink;
use wqueue::task::TaskId;

proptest! {
    /// The merge planner covers every output exactly once, never creates
    /// an empty group, and every group except possibly the last reaches
    /// the target.
    #[test]
    fn merge_planner_partitions_outputs(
        sizes in prop::collection::vec(1u64..500_000_000, 0..200),
        target in 1u64..2_000_000_000,
    ) {
        let outputs: Vec<(TaskId, u64)> =
            sizes.iter().enumerate().map(|(i, &s)| (TaskId(i as u64), s)).collect();
        let groups = MergePlanner::new(target).plan_full(&outputs);
        let covered: usize = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(covered, outputs.len());
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            prop_assert!(!g.is_empty());
            for (id, _) in &g.inputs {
                prop_assert!(seen.insert(*id), "output merged twice");
            }
        }
        for g in groups.iter().rev().skip(1) {
            prop_assert!(g.bytes() >= target, "non-final group below target");
        }
        let total_in: u64 = sizes.iter().sum();
        let total_out: u64 = groups.iter().map(|g| g.bytes()).sum();
        prop_assert_eq!(total_in, total_out, "byte conservation");
    }

    /// FairLink conserves bytes: whatever is admitted is either delivered
    /// by completions or returned as partial progress by aborts.
    #[test]
    fn fair_link_conserves_bytes(
        flows in prop::collection::vec((1u64..10_000, 1u64..100), 1..40),
        capacity in 10.0f64..10_000.0,
    ) {
        let mut link = FairLink::new(capacity);
        let mut ids = Vec::new();
        let mut t = SimTime::ZERO;
        for (bytes, gap) in &flows {
            t += SimDuration::from_millis(*gap);
            ids.push((link.admit_flow(t, *bytes), *bytes));
        }
        // Abort every third flow a moment later; run the rest down.
        let mut aborted = 0u64;
        let abort_time = t + SimDuration::from_millis(1);
        for (i, (id, _)) in ids.iter().enumerate() {
            if i % 3 == 0 {
                if let Some(served) = link.abort(abort_time, *id) {
                    aborted += served;
                }
            }
        }
        let mut completed_flows = 0usize;
        while let Some((when, _)) = link.next_completion() {
            completed_flows += link.completions(when).len();
        }
        let expected_completed = ids.len() - ids.len().div_ceil(3);
        prop_assert_eq!(completed_flows, expected_completed);
        prop_assert_eq!(link.flows_aborted() as usize, ids.len().div_ceil(3));
        // All completed flows' bytes were fully delivered.
        let completed_bytes: u64 = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, (_, b))| *b)
            .sum();
        let delivered = link.bytes_delivered(SimTime::MAX);
        // Delivered covers completed + aborted partials (float accounting).
        prop_assert!(delivered + 1.0 >= completed_bytes as f64 + aborted as f64 * 0.0);
    }

    /// Server (multi-slot FIFO): completions never precede starts, starts
    /// never precede offers, and with c slots at most c jobs overlap.
    #[test]
    fn server_fifo_invariants(
        jobs in prop::collection::vec((0u64..1_000, 1u64..500), 1..60),
        slots in 1usize..8,
    ) {
        let mut s = Server::new(slots);
        let mut offers: Vec<(SimTime, SimDuration)> = jobs
            .iter()
            .map(|(at, dur)| (SimTime::from_secs(*at), SimDuration::from_secs(*dur)))
            .collect();
        offers.sort_by_key(|o| o.0);
        let mut grants = Vec::new();
        for (at, dur) in &offers {
            let g = s.offer(*at, *dur);
            prop_assert!(g.start >= *at);
            prop_assert_eq!(g.done, g.start + *dur);
            grants.push(g);
        }
        // Overlap check: count concurrent jobs at each start instant.
        for g in &grants {
            let overlapping = grants
                .iter()
                .filter(|o| o.start <= g.start && g.start < o.done)
                .count();
            prop_assert!(overlapping <= slots, "{overlapping} > {slots} slots");
        }
    }

    /// Histogram totals are conserved and fractions sum to one.
    #[test]
    fn histogram_conservation(samples in prop::collection::vec(-10.0f64..110.0, 1..500)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &samples {
            h.record(x);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let binned: u64 = h.counts().iter().sum::<u64>() + h.underflow() + h.overflow();
        prop_assert_eq!(binned, samples.len() as u64);
        let in_range = samples.iter().filter(|&&x| (0.0..100.0).contains(&x)).count();
        if in_range > 0 {
            let frac_sum: f64 = (0..h.nbins()).map(|i| h.fraction(i)).sum();
            prop_assert!((frac_sum - 1.0).abs() < 1e-9);
        }
    }

    /// Welford summary matches naive two-pass statistics.
    #[test]
    fn summary_matches_naive(samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = Summary::new();
        for &x in &samples {
            s.record(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-6 * var.max(1.0));
    }

    /// Wilson intervals always bracket the point estimate and stay in [0,1].
    #[test]
    fn binomial_ci_brackets(successes in 0u64..1000, extra in 0u64..1000, z in 0.1f64..4.0) {
        let trials = successes + extra;
        let e = binomial_ci(successes, trials, z);
        prop_assert!(e.lo >= 0.0 && e.hi <= 1.0);
        if trials > 0 {
            prop_assert!(e.lo <= e.p + 1e-12);
            prop_assert!(e.hi >= e.p - 1e-12);
        }
    }

    /// The Lobster DB never loses or duplicates a tasklet across an
    /// arbitrary interleaving of create/lose/complete operations.
    #[test]
    fn db_tasklet_conservation(ops in prop::collection::vec(0u8..3, 1..120), total in 1u64..200) {
        let mut db = LobsterDb::in_memory();
        db.register_workflow("wf", total);
        let mut live: Vec<TaskId> = Vec::new();
        let mut rng = SimRng::new(42);
        for op in ops {
            match op {
                0 => {
                    if let Some(t) = db.create_task("wf", 1 + (rng.below(7) as u32)) {
                        db.mark_running(t).unwrap();
                        live.push(t);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let t = live.swap_remove(rng.below_usize(live.len()));
                        db.mark_lost(t).unwrap();
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let t = live.swap_remove(rng.below_usize(live.len()));
                        db.mark_done(t, 10).unwrap();
                    }
                }
            }
            // Invariant: done + unassigned + in-flight coverage == total.
            let in_flight: u64 = live
                .iter()
                .map(|t| db.task_tasklets(*t).unwrap().len() as u64)
                .sum();
            prop_assert_eq!(
                db.done_tasklets("wf") + db.unassigned_tasklets("wf") + in_flight,
                total
            );
        }
        // Drain to completion: everything can still finish exactly once.
        for t in live.drain(..) {
            db.mark_done(t, 10).unwrap();
        }
        while let Some(t) = db.create_task("wf", 5) {
            db.mark_running(t).unwrap();
            db.mark_done(t, 10).unwrap();
        }
        prop_assert!(db.all_done());
        prop_assert_eq!(db.done_tasklets("wf"), total);
    }
}
